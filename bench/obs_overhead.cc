// Observation-only contract check for the obs layer: replays the same
// synthetic query/update trace through the engine five times per round —
// plain, fully instrumented (MetricRegistry attached + a QueryTrace on
// every query), sampled (registry + TraceBuffer with the production
// default of ~1/64 engine-owned traces, the /tracez feed), remote-plain
// (an in-process two-node shard cluster behind a Coordinator, untraced),
// and remote-traced (same cluster, a QueryTrace per query, so node-side
// spans ride the wire back and get aligned) — and reports
//
//   overhead_x = median(arm round seconds) / median(baseline seconds)
//   bit_equal  = arm answers identical to baseline answers (elements,
//                objective, corpus version) for every query
//
// in BENCH_obs.json. The local arms baseline against plain; the
// remote-traced arm baselines against remote-plain (sharded answers
// legitimately differ from single-plan ones, so comparing across plans
// would measure the plan, not the tracing). The binary itself enforces
// the contract: bit_equal must hold unconditionally for every arm, and
// each arm's overhead_x must stay <= --max_overhead (default 1.05)
// unless DIVERSE_BENCH_NO_GATE is set — instrumentation that perturbs
// answers or costs more than ~5% is a bug, not a tuning knob. Rounds
// interleave the arms so slow drift (thermal, noisy neighbors) hits all
// of them symmetrically.
#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bench_json.h"
#include "data/synthetic.h"
#include "engine/engine.h"
#include "engine/workload.h"
#include "obs/metric_registry.h"
#include "obs/query_trace.h"
#include "obs/trace_buffer.h"
#include "rpc/coordinator.h"
#include "rpc/shard_node.h"
#include "rpc/transport.h"
#include "util/flags.h"
#include "util/random.h"
#include "util/timer.h"

namespace diverse {
namespace {

struct RoundResult {
  double seconds = 0.0;
  std::vector<engine::QueryResult> answers;
};

enum class Arm {
  kPlain,         // no registry, no traces
  kInstrumented,  // registry + a caller-attached QueryTrace per query
  kSampled,       // registry + TraceBuffer sampling (~1/64, the /tracez feed)
  kRemotePlain,   // in-process shard cluster, untraced (the remote baseline)
  kRemoteTraced,  // same cluster + a QueryTrace per query: node spans on
                  // the wire, aligned into the coordinator timeline
};

// One full trace replay on a fresh engine built from `data`. The Rng is
// re-seeded per round, so every round sees the identical query stream
// and identical update epochs — the only difference between arms is the
// instrumentation.
RoundResult RunRound(const Dataset& data, int queries, int p, double lambda,
                     int update_every, std::uint64_t seed, Arm arm) {
  const bool instrumented =
      arm == Arm::kInstrumented || arm == Arm::kRemoteTraced;
  const bool remote =
      arm == Arm::kRemotePlain || arm == Arm::kRemoteTraced;
  obs::MetricRegistry registry;
  obs::TraceBuffer trace_buffer;
  // Remote arms: two full-replica shard nodes behind in-process
  // transports, updates fanned out through the coordinator after each
  // local apply — the same topology the obs integration tests use.
  std::vector<std::unique_ptr<rpc::ShardNode>> nodes;
  std::vector<std::unique_ptr<rpc::InProcessTransport>> transports;
  std::unique_ptr<rpc::Coordinator> coordinator;
  if (remote) {
    std::vector<rpc::Transport*> raw;
    for (int i = 0; i < 2; ++i) {
      Dataset replica = data;
      nodes.push_back(std::make_unique<rpc::ShardNode>(
          replica.weights, std::move(replica.metric), lambda));
      transports.push_back(
          std::make_unique<rpc::InProcessTransport>(nodes.back().get()));
      raw.push_back(transports.back().get());
    }
    coordinator = std::make_unique<rpc::Coordinator>(raw);
  }
  engine::DiversificationEngine::Options options;
  options.num_workers = 1;
  options.remote = coordinator.get();
  if (arm != Arm::kPlain && arm != Arm::kRemotePlain) {
    options.registry = &registry;
  }
  if (arm == Arm::kSampled) {
    options.trace_buffer = &trace_buffer;
    options.trace_sample_every = 64;
  }
  Dataset copy = data;
  engine::DiversificationEngine server(copy.weights, std::move(copy.metric),
                                       lambda, options);
  const int n = data.size();

  Rng rng(seed);
  engine::SyntheticQueryConfig query_config;
  query_config.p = p;
  query_config.lambda = lambda;
  query_config.universe = n;
  query_config.sharded = remote;
  query_config.remote = remote;
  query_config.num_shards = 4;
  std::vector<engine::Query> trace;
  trace.reserve(queries);
  for (int i = 0; i < queries; ++i) {
    trace.push_back(engine::MakeSyntheticQuery(query_config, rng));
  }
  std::vector<std::unique_ptr<obs::QueryTrace>> query_traces;
  if (instrumented) {
    query_traces.reserve(queries);
    for (int i = 0; i < queries; ++i) {
      query_traces.push_back(std::make_unique<obs::QueryTrace>());
      trace[i].trace = query_traces.back().get();
    }
  }

  int epoch = 0;
  RoundResult result;
  result.answers.reserve(queries);
  WallTimer wall;
  for (int i = 0; i < queries; ++i) {
    if (update_every > 0 && i > 0 && i % update_every == 0) {
      const std::vector<engine::CorpusUpdate> updates =
          engine::MakeSyntheticEpoch(n, /*churn=*/false, epoch++, rng);
      const std::uint64_t version = server.ApplyUpdates(updates);
      if (coordinator) coordinator->PublishEpoch(version, updates);
    }
    result.answers.push_back(server.RunSync(trace[i]));
  }
  result.seconds = wall.Seconds();
  return result;
}

double Median(std::vector<double> values) {
  std::sort(values.begin(), values.end());
  return values[values.size() / 2];
}

bool SameAnswers(const std::vector<engine::QueryResult>& a,
                 const std::vector<engine::QueryResult>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].elements != b[i].elements ||
        a[i].objective != b[i].objective ||
        a[i].corpus_version != b[i].corpus_version) {
      return false;
    }
  }
  return true;
}

int Run(int n, int p, int queries, int rounds, double lambda,
        int update_every, double max_overhead, std::uint64_t seed) {
  Rng rng(seed);
  const Dataset data = MakeUniformSynthetic(n, rng);
  std::cout << "obs overhead: n = " << n << ", p = " << p << ", " << queries
            << " queries x " << rounds << " rounds per arm\n";

  // Warm-up pass (all arms) so first-touch costs are off the clock.
  RunRound(data, queries, p, lambda, update_every, seed, Arm::kPlain);
  RunRound(data, queries, p, lambda, update_every, seed, Arm::kInstrumented);
  RunRound(data, queries, p, lambda, update_every, seed, Arm::kSampled);
  RunRound(data, queries, p, lambda, update_every, seed, Arm::kRemotePlain);
  RunRound(data, queries, p, lambda, update_every, seed, Arm::kRemoteTraced);

  std::vector<double> plain_seconds;
  std::vector<double> instr_seconds;
  std::vector<double> sampled_seconds;
  std::vector<double> remote_plain_seconds;
  std::vector<double> remote_traced_seconds;
  bool instr_bit_equal = true;
  bool sampled_bit_equal = true;
  bool remote_bit_equal = true;
  for (int r = 0; r < rounds; ++r) {
    const RoundResult plain =
        RunRound(data, queries, p, lambda, update_every, seed, Arm::kPlain);
    const RoundResult instr = RunRound(data, queries, p, lambda, update_every,
                                       seed, Arm::kInstrumented);
    const RoundResult sampled =
        RunRound(data, queries, p, lambda, update_every, seed, Arm::kSampled);
    const RoundResult remote_plain = RunRound(data, queries, p, lambda,
                                              update_every, seed,
                                              Arm::kRemotePlain);
    const RoundResult remote_traced = RunRound(data, queries, p, lambda,
                                               update_every, seed,
                                               Arm::kRemoteTraced);
    plain_seconds.push_back(plain.seconds);
    instr_seconds.push_back(instr.seconds);
    sampled_seconds.push_back(sampled.seconds);
    remote_plain_seconds.push_back(remote_plain.seconds);
    remote_traced_seconds.push_back(remote_traced.seconds);
    instr_bit_equal =
        instr_bit_equal && SameAnswers(plain.answers, instr.answers);
    sampled_bit_equal =
        sampled_bit_equal && SameAnswers(plain.answers, sampled.answers);
    // Remote arms compare against each other: the sharded plan's answers
    // differ from the single plan's by construction, but tracing must
    // not move them.
    remote_bit_equal = remote_bit_equal &&
                       SameAnswers(remote_plain.answers,
                                   remote_traced.answers);
  }
  const double plain_median = Median(plain_seconds);
  const double instr_median = Median(instr_seconds);
  const double sampled_median = Median(sampled_seconds);
  const double remote_plain_median = Median(remote_plain_seconds);
  const double remote_traced_median = Median(remote_traced_seconds);
  const double instr_overhead_x = instr_median / plain_median;
  const double sampled_overhead_x = sampled_median / plain_median;
  const double remote_overhead_x = remote_traced_median / remote_plain_median;
  std::cout << "plain median:         " << plain_median * 1e3 << " ms\n"
            << "instrumented median:  " << instr_median * 1e3 << " ms"
            << " (overhead_x " << instr_overhead_x << ", bit_equal "
            << (instr_bit_equal ? "yes" : "NO") << ")\n"
            << "sampled median:       " << sampled_median * 1e3 << " ms"
            << " (overhead_x " << sampled_overhead_x << ", bit_equal "
            << (sampled_bit_equal ? "yes" : "NO") << ")\n"
            << "remote plain median:  " << remote_plain_median * 1e3
            << " ms\n"
            << "remote traced median: " << remote_traced_median * 1e3
            << " ms (overhead_x " << remote_overhead_x << ", bit_equal "
            << (remote_bit_equal ? "yes" : "NO") << ")\n";

  bench::BenchJson json("obs");
  json.NewRecord("plain")
      .Add("n", static_cast<long long>(n))
      .Add("p", static_cast<long long>(p))
      .Add("queries", static_cast<long long>(queries))
      .Add("rounds", static_cast<long long>(rounds))
      .Add("median_seconds", plain_median)
      .Add("qps", queries / plain_median);
  json.NewRecord("instrumented")
      .Add("n", static_cast<long long>(n))
      .Add("p", static_cast<long long>(p))
      .Add("queries", static_cast<long long>(queries))
      .Add("rounds", static_cast<long long>(rounds))
      .Add("median_seconds", instr_median)
      .Add("qps", queries / instr_median)
      .Add("overhead_x", instr_overhead_x)
      .Add("bit_equal", static_cast<long long>(instr_bit_equal ? 1 : 0));
  json.NewRecord("sampled")
      .Add("n", static_cast<long long>(n))
      .Add("p", static_cast<long long>(p))
      .Add("queries", static_cast<long long>(queries))
      .Add("rounds", static_cast<long long>(rounds))
      .Add("sample_every", 64LL)
      .Add("median_seconds", sampled_median)
      .Add("qps", queries / sampled_median)
      .Add("overhead_x", sampled_overhead_x)
      .Add("bit_equal", static_cast<long long>(sampled_bit_equal ? 1 : 0));
  json.NewRecord("remote_plain")
      .Add("n", static_cast<long long>(n))
      .Add("p", static_cast<long long>(p))
      .Add("queries", static_cast<long long>(queries))
      .Add("rounds", static_cast<long long>(rounds))
      .Add("median_seconds", remote_plain_median)
      .Add("qps", queries / remote_plain_median);
  json.NewRecord("remote_traced")
      .Add("n", static_cast<long long>(n))
      .Add("p", static_cast<long long>(p))
      .Add("queries", static_cast<long long>(queries))
      .Add("rounds", static_cast<long long>(rounds))
      .Add("median_seconds", remote_traced_median)
      .Add("qps", queries / remote_traced_median)
      .Add("overhead_x", remote_overhead_x)
      .Add("bit_equal", static_cast<long long>(remote_bit_equal ? 1 : 0));
  json.WriteFile();

  if (!instr_bit_equal || !sampled_bit_equal || !remote_bit_equal) {
    std::cerr << "FAIL: "
              << (!instr_bit_equal
                      ? "instrumented"
                      : !sampled_bit_equal ? "sampled" : "remote traced")
              << " answers diverged from their baseline — observation "
                 "changed an answer\n";
    return 1;
  }
  const double worst_overhead_x =
      std::max({instr_overhead_x, sampled_overhead_x, remote_overhead_x});
  if (worst_overhead_x > max_overhead) {
    if (std::getenv("DIVERSE_BENCH_NO_GATE") != nullptr) {
      std::cout << "DIVERSE_BENCH_NO_GATE set: overhead gate not enforced\n";
      return 0;
    }
    std::cerr << "FAIL: overhead_x " << worst_overhead_x << " > "
              << max_overhead
              << " (set DIVERSE_BENCH_NO_GATE=1 to override)\n";
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace diverse

int main(int argc, char** argv) {
  int n = 900;
  int p = 10;
  int queries = 80;
  int rounds = 15;
  double lambda = 0.2;
  int update_every = 10;
  double max_overhead = 1.05;
  std::int64_t seed = 17;
  diverse::FlagSet flags(
      "obs_overhead — measure the cost of full instrumentation (metric "
      "registry + per-query traces, locally and across an in-process "
      "shard cluster with node-side span blocks) against identical "
      "uninstrumented runs and enforce the observation-only contract");
  flags.AddInt("n", &n, "synthetic corpus size");
  flags.AddInt("p", &p, "subset size per query");
  flags.AddInt("queries", &queries, "queries per round");
  flags.AddInt("rounds", &rounds, "rounds per arm (median is reported)");
  flags.AddDouble("lambda", &lambda, "quality/diversity trade-off");
  flags.AddInt("update_every", &update_every,
               "apply an update epoch every K queries (0 = none)");
  flags.AddDouble("max_overhead", &max_overhead,
                  "fail when overhead_x exceeds this");
  flags.AddInt64("seed", &seed, "random seed");
  if (!flags.Parse(argc, argv)) return 1;
  return diverse::Run(n, p, queries, rounds, lambda, update_every,
                      max_overhead, static_cast<std::uint64_t>(seed));
}
