// Micro-benchmarks (google-benchmark) for the per-operation costs that
// determine the experiment-scale running times: greedy steps, swap-gain
// evaluation, evaluator updates, and the exact solver.
#include <benchmark/benchmark.h>

#include "algorithms/brute_force.h"
#include "algorithms/greedy_edge.h"
#include "algorithms/greedy_vertex.h"
#include "algorithms/local_search.h"
#include "core/solution_state.h"
#include "data/synthetic.h"
#include "matroid/uniform_matroid.h"
#include "submodular/coverage_function.h"
#include "submodular/modular_function.h"
#include "util/random.h"

namespace diverse {
namespace {

struct Shared {
  Dataset data;
  ModularFunction weights;
  DiversificationProblem problem;

  Shared(int n, double lambda, std::uint64_t seed, Rng&& rng)
      : data(MakeUniformSynthetic(n, rng)),
        weights(data.weights),
        problem(&data.metric, &weights, lambda) {}
  Shared(int n, double lambda = 0.2, std::uint64_t seed = 1)
      : Shared(n, lambda, seed, Rng(seed)) {}
};

void BM_GreedyVertex(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int p = static_cast<int>(state.range(1));
  Shared shared(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(GreedyVertex(shared.problem, {.p = p}));
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_GreedyVertex)
    ->Args({100, 10})
    ->Args({200, 10})
    ->Args({400, 10})
    ->Args({400, 40})
    ->Complexity(benchmark::oN);

void BM_GreedyEdge(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int p = static_cast<int>(state.range(1));
  Shared shared(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        GreedyEdge(shared.problem, shared.weights, {.p = p}));
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_GreedyEdge)
    ->Args({100, 10})
    ->Args({200, 10})
    ->Args({400, 10})
    ->Complexity(benchmark::oNSquared);

void BM_SolutionStateAdd(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Shared shared(n);
  SolutionState solution(&shared.problem);
  int v = 0;
  for (auto _ : state) {
    solution.Add(v);
    solution.Remove(v);
    v = (v + 1) % n;
  }
}
BENCHMARK(BM_SolutionStateAdd)->Arg(100)->Arg(1000)->Arg(4000);

void BM_SwapGain(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Shared shared(n);
  SolutionState solution(&shared.problem);
  for (int v = 0; v < 20; ++v) solution.Add(v);
  int in = 20;
  for (auto _ : state) {
    benchmark::DoNotOptimize(solution.SwapGain(5, in));
    in = 20 + (in - 19) % (n - 20);
  }
}
BENCHMARK(BM_SwapGain)->Arg(100)->Arg(1000);

void BM_LocalSearchFull(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int p = 10;
  Shared shared(n);
  const UniformMatroid matroid(n, p);
  for (auto _ : state) {
    benchmark::DoNotOptimize(LocalSearch(shared.problem, matroid, {}));
  }
}
BENCHMARK(BM_LocalSearchFull)->Arg(60)->Arg(120);

void BM_BruteForce(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int p = static_cast<int>(state.range(1));
  Shared shared(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        BruteForceCardinality(shared.problem, {.p = p}));
  }
}
BENCHMARK(BM_BruteForce)->Args({20, 5})->Args({30, 5})->Args({40, 4});

void BM_CoverageEvaluatorGain(benchmark::State& state) {
  Rng rng(3);
  const int n = 500;
  std::vector<std::vector<int>> covers(n);
  for (auto& cv : covers) {
    cv = rng.SampleWithoutReplacement(50, rng.UniformInt(3, 10));
  }
  const CoverageFunction fn(covers, std::vector<double>(50, 1.0));
  auto eval = fn.MakeEvaluator();
  for (int v = 0; v < 50; ++v) eval->Add(v);
  int u = 50;
  for (auto _ : state) {
    benchmark::DoNotOptimize(eval->Gain(u));
    u = 50 + (u - 49) % (n - 50);
  }
}
BENCHMARK(BM_CoverageEvaluatorGain);

}  // namespace
}  // namespace diverse

BENCHMARK_MAIN();
