// Micro-benchmarks (google-benchmark) for the per-operation costs that
// determine the experiment-scale running times: greedy steps, swap-gain
// evaluation, evaluator updates, and the exact solver.
//
// In addition to the google-benchmark suite, main() times the incremental
// evaluation path (SolutionState + IncrementalEvaluator) against the
// from-scratch DiversificationProblem::Objective path for greedy and
// local search at n >= 2000, and writes the timings (and speedups) to
// BENCH_micro_algorithms.json. Pass --compare_only to skip the
// google-benchmark suite.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "algorithms/brute_force.h"
#include "algorithms/greedy_edge.h"
#include "algorithms/greedy_vertex.h"
#include "algorithms/local_search.h"
#include "bench_json.h"
#include "core/solution_state.h"
#include "data/synthetic.h"
#include "matroid/uniform_matroid.h"
#include "submodular/coverage_function.h"
#include "submodular/modular_function.h"
#include "util/random.h"
#include "util/timer.h"

namespace diverse {
namespace {

struct Shared {
  Dataset data;
  ModularFunction weights;
  DiversificationProblem problem;

  Shared(int n, double lambda, std::uint64_t /*seed*/, Rng&& rng)
      : data(MakeUniformSynthetic(n, rng)),
        weights(data.weights),
        problem(&data.metric, &weights, lambda) {}
  Shared(int n, double lambda = 0.2, std::uint64_t seed = 1)
      : Shared(n, lambda, seed, Rng(seed)) {}
};

void BM_GreedyVertex(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int p = static_cast<int>(state.range(1));
  Shared shared(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(GreedyVertex(shared.problem, {.p = p}));
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_GreedyVertex)
    ->Args({100, 10})
    ->Args({200, 10})
    ->Args({400, 10})
    ->Args({400, 40})
    ->Complexity(benchmark::oN);

void BM_GreedyEdge(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int p = static_cast<int>(state.range(1));
  Shared shared(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        GreedyEdge(shared.problem, shared.weights, {.p = p}));
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_GreedyEdge)
    ->Args({100, 10})
    ->Args({200, 10})
    ->Args({400, 10})
    ->Complexity(benchmark::oNSquared);

void BM_SolutionStateAdd(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Shared shared(n);
  SolutionState solution(&shared.problem);
  int v = 0;
  for (auto _ : state) {
    solution.Add(v);
    solution.Remove(v);
    v = (v + 1) % n;
  }
}
BENCHMARK(BM_SolutionStateAdd)->Arg(100)->Arg(1000)->Arg(4000);

void BM_SwapGain(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Shared shared(n);
  SolutionState solution(&shared.problem);
  for (int v = 0; v < 20; ++v) solution.Add(v);
  int in = 20;
  for (auto _ : state) {
    benchmark::DoNotOptimize(solution.SwapGain(5, in));
    in = 20 + (in - 19) % (n - 20);
  }
}
BENCHMARK(BM_SwapGain)->Arg(100)->Arg(1000);

void BM_LocalSearchFull(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int p = 10;
  Shared shared(n);
  const UniformMatroid matroid(n, p);
  for (auto _ : state) {
    benchmark::DoNotOptimize(LocalSearch(shared.problem, matroid, {}));
  }
}
BENCHMARK(BM_LocalSearchFull)->Arg(60)->Arg(120);

void BM_BruteForce(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int p = static_cast<int>(state.range(1));
  Shared shared(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        BruteForceCardinality(shared.problem, {.p = p}));
  }
}
BENCHMARK(BM_BruteForce)->Args({20, 5})->Args({30, 5})->Args({40, 4});

void BM_CoverageEvaluatorGain(benchmark::State& state) {
  Rng rng(3);
  const int n = 500;
  std::vector<std::vector<int>> covers(n);
  for (auto& cv : covers) {
    cv = rng.SampleWithoutReplacement(50, rng.UniformInt(3, 10));
  }
  const CoverageFunction fn(covers, std::vector<double>(50, 1.0));
  auto eval = fn.MakeEvaluator();
  for (int v = 0; v < 50; ++v) eval->Add(v);
  int u = 50;
  for (auto _ : state) {
    benchmark::DoNotOptimize(eval->Gain(u));
    u = 50 + (u - 49) % (n - 50);
  }
}
BENCHMARK(BM_CoverageEvaluatorGain);

// ---- Incremental vs from-scratch evaluation comparison --------------------

// Greedy B with every candidate potential evaluated from scratch:
// 1/2 [f(S+u) - f(S)] + lambda [d(S+u) - d(S)], each term via a full
// O(|S|^2) DiversificationProblem evaluation. This is the path the
// incremental subsystem replaces; kept here as the timing baseline.
AlgorithmResult ScratchGreedyVertex(const DiversificationProblem& problem,
                                    int p) {
  const int n = problem.size();
  AlgorithmResult result;
  std::vector<int> members;
  while (static_cast<int>(members.size()) < p) {
    const double f_base = problem.quality().Value(members);
    const double d_base = problem.DispersionTerm(members);
    int best = -1;
    double best_gain = 0.0;
    std::vector<int> extended = members;
    extended.push_back(-1);
    for (int u = 0; u < n; ++u) {
      if (std::find(members.begin(), members.end(), u) != members.end()) {
        continue;
      }
      extended.back() = u;
      const double gain =
          0.5 * (problem.quality().Value(extended) - f_base) +
          (problem.DispersionTerm(extended) - d_base);
      if (best < 0 || gain > best_gain) {
        best = u;
        best_gain = gain;
      }
    }
    members.push_back(best);
    ++result.steps;
  }
  result.elements = members;
  result.objective = problem.Objective(members);
  return result;
}

// Best-improvement single swaps with every gain evaluated from scratch.
AlgorithmResult ScratchLocalSearch(const DiversificationProblem& problem,
                                   std::vector<int> members,
                                   long long max_swaps) {
  const int n = problem.size();
  AlgorithmResult result;
  while (result.steps < max_swaps) {
    const double base = problem.Objective(members);
    int best_pos = -1;
    int best_in = -1;
    double best_gain = 0.0;
    std::vector<int> swapped = members;
    for (std::size_t pos = 0; pos < members.size(); ++pos) {
      for (int in = 0; in < n; ++in) {
        if (std::find(members.begin(), members.end(), in) != members.end()) {
          continue;
        }
        swapped[pos] = in;
        const double gain = problem.Objective(swapped) - base;
        if (gain > best_gain && gain > 1e-12) {
          best_gain = gain;
          best_pos = static_cast<int>(pos);
          best_in = in;
        }
      }
      swapped[pos] = members[pos];
    }
    if (best_pos < 0) break;
    members[best_pos] = best_in;
    ++result.steps;
  }
  std::sort(members.begin(), members.end());
  result.elements = members;
  result.objective = problem.Objective(members);
  return result;
}

void RunEvaluatorComparison() {
  bench::BenchJson json("micro_algorithms");
  std::cout << "\nIncremental evaluation vs from-scratch objective "
               "evaluation\n";
  for (int n : {2000, 4000}) {
    const int p = 16;
    Shared shared(n);
    const UniformMatroid matroid(n, p);

    WallTimer timer;
    const AlgorithmResult scratch_greedy =
        ScratchGreedyVertex(shared.problem, p);
    const double scratch_greedy_s = timer.Seconds();
    timer.Restart();
    const AlgorithmResult fast_greedy = GreedyVertex(shared.problem, {.p = p});
    const double fast_greedy_s = timer.Seconds();
    if (std::abs(scratch_greedy.objective - fast_greedy.objective) > 1e-6) {
      std::cerr << "warning: greedy paths disagree: "
                << scratch_greedy.objective << " vs "
                << fast_greedy.objective << "\n";
    }
    json.NewRecord("greedy_vertex")
        .Add("n", static_cast<long long>(n))
        .Add("p", static_cast<long long>(p))
        .Add("scratch_seconds", scratch_greedy_s)
        .Add("incremental_seconds", fast_greedy_s)
        .Add("speedup", scratch_greedy_s / std::max(fast_greedy_s, 1e-12))
        .Add("objective", fast_greedy.objective);
    std::cout << "  greedy n=" << n << ": scratch " << scratch_greedy_s
              << "s, incremental " << fast_greedy_s << "s ("
              << scratch_greedy_s / std::max(fast_greedy_s, 1e-12)
              << "x)\n";

    // Local search from the same greedy start, identical swap budget.
    const long long max_swaps = 8;
    timer.Restart();
    const AlgorithmResult scratch_ls = ScratchLocalSearch(
        shared.problem, fast_greedy.elements, max_swaps);
    const double scratch_ls_s = timer.Seconds();
    LocalSearchOptions options;
    options.initial = fast_greedy.elements;
    options.max_swaps = max_swaps;
    timer.Restart();
    const AlgorithmResult fast_ls =
        LocalSearch(shared.problem, matroid, options);
    const double fast_ls_s = timer.Seconds();
    if (std::abs(scratch_ls.objective - fast_ls.objective) > 1e-6) {
      std::cerr << "warning: local-search paths disagree: "
                << scratch_ls.objective << " vs " << fast_ls.objective
                << "\n";
    }
    json.NewRecord("local_search")
        .Add("n", static_cast<long long>(n))
        .Add("p", static_cast<long long>(p))
        .Add("max_swaps", max_swaps)
        .Add("scratch_seconds", scratch_ls_s)
        .Add("incremental_seconds", fast_ls_s)
        .Add("speedup", scratch_ls_s / std::max(fast_ls_s, 1e-12))
        .Add("objective", fast_ls.objective);
    std::cout << "  local_search n=" << n << ": scratch " << scratch_ls_s
              << "s, incremental " << fast_ls_s << "s ("
              << scratch_ls_s / std::max(fast_ls_s, 1e-12) << "x)\n";
  }
  json.WriteFile();
}

}  // namespace
}  // namespace diverse

int main(int argc, char** argv) {
  bool compare_only = false;
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--compare_only") == 0) {
      compare_only = true;
    } else {
      args.push_back(argv[i]);
    }
  }
  int filtered_argc = static_cast<int>(args.size());
  benchmark::Initialize(&filtered_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(filtered_argc, args.data())) {
    return 1;
  }
  if (!compare_only) benchmark::RunSpecifiedBenchmarks();
  diverse::RunEvaluatorComparison();
  return 0;
}
