// Shared plumbing for the experiment binaries in bench/. Each binary
// reproduces one table or figure of the paper; these helpers implement the
// §7 protocol details (LS initialized from Greedy B and capped at 10x its
// runtime, observed approximation factors, etc.).
#ifndef DIVERSE_BENCH_BENCH_UTIL_H_
#define DIVERSE_BENCH_BENCH_UTIL_H_

#include <algorithm>
#include <string>
#include <vector>

#include "algorithms/greedy_edge.h"
#include "algorithms/greedy_vertex.h"
#include "algorithms/local_search.h"
#include "algorithms/result.h"
#include "core/diversification_problem.h"
#include "matroid/uniform_matroid.h"
#include "submodular/modular_function.h"

namespace diverse {
namespace bench {

// The paper's LS protocol (§7): start from the Greedy B solution and run
// best-improvement single swaps until local optimality or 10x the Greedy B
// wall time.
inline AlgorithmResult RunPaperLs(const DiversificationProblem& problem,
                                  const AlgorithmResult& greedy_b, int p) {
  const UniformMatroid matroid(problem.size(), std::min(p, problem.size()));
  LocalSearchOptions options;
  options.initial = greedy_b.elements;
  options.time_limit_seconds =
      std::max(10.0 * greedy_b.elapsed_seconds, 1e-4);
  return LocalSearch(problem, matroid, options);
}

// Observed approximation factor OPT / ALG (the paper's AF columns).
inline double Af(double opt, double alg) { return alg > 0 ? opt / alg : 0.0; }

// Pretty element list "{a, b, c}" for Table 8-style output.
inline std::string ElementsToString(std::vector<int> elements) {
  std::sort(elements.begin(), elements.end());
  std::string out = "{";
  for (std::size_t i = 0; i < elements.size(); ++i) {
    if (i > 0) out += ",";
    out += std::to_string(elements[i]);
  }
  return out + "}";
}

}  // namespace bench
}  // namespace diverse

#endif  // DIVERSE_BENCH_BENCH_UTIL_H_
