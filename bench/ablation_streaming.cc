// Ablation G: streaming/incremental diversification (paper §2's Minack et
// al. discussion). Measures how close the one-swap-per-arrival streaming
// diversifier gets to the offline Greedy B across arrival orders, and how
// many swaps it spends — the CPU/quality trade the paper's dynamic-update
// theory formalizes.
#include <cstdint>
#include <iostream>
#include <numeric>

#include "algorithms/greedy_vertex.h"
#include "algorithms/streaming.h"
#include "bench_util.h"
#include "data/synthetic.h"
#include "util/flags.h"
#include "util/random.h"
#include "util/stats.h"
#include "util/table.h"

namespace diverse {
namespace {

int Run(int n, int p, int orders, double lambda, std::uint64_t seed) {
  std::cout << "Ablation G: streaming vs offline Greedy B (N = " << n
            << ", p = " << p << ", " << orders << " random orders)\n\n";
  Rng rng(seed);
  Dataset data = MakeUniformSynthetic(n, rng);
  const ModularFunction weights(data.weights);
  const DiversificationProblem problem(&data.metric, &weights, lambda);
  const AlgorithmResult offline = GreedyVertex(problem, {.p = p});

  OnlineStats quality_ratio;
  OnlineStats swap_count;
  for (int o = 0; o < orders; ++o) {
    std::vector<int> order(n);
    std::iota(order.begin(), order.end(), 0);
    rng.Shuffle(&order);
    StreamingDiversifier stream(&problem, p);
    stream.ObserveAll(order);
    quality_ratio.Add(stream.objective() / offline.objective);
    swap_count.Add(static_cast<double>(stream.swaps_performed()));
  }

  TextTable table({"metric", "mean", "min", "max", "stddev"});
  table.NewRow()
      .AddCell("stream/offline quality")
      .AddDouble(quality_ratio.mean())
      .AddDouble(quality_ratio.min())
      .AddDouble(quality_ratio.max())
      .AddDouble(quality_ratio.stddev());
  table.NewRow()
      .AddCell("swaps per stream")
      .AddDouble(swap_count.mean(), 1)
      .AddDouble(swap_count.min(), 0)
      .AddDouble(swap_count.max(), 0)
      .AddDouble(swap_count.stddev(), 1);
  table.Print(std::cout);
  std::cout << "\noffline Greedy B phi = " << offline.objective
            << "\n(expected shape: stream quality within a few percent of "
               "offline; swaps << n)\n";
  return 0;
}

}  // namespace
}  // namespace diverse

int main(int argc, char** argv) {
  int n = 200;
  int p = 10;
  int orders = 50;
  double lambda = 0.2;
  std::int64_t seed = 15;
  diverse::FlagSet flags("Ablation G: streaming diversification");
  flags.AddInt("n", &n, "universe size");
  flags.AddInt("p", &p, "panel size");
  flags.AddInt("orders", &orders, "random arrival orders");
  flags.AddDouble("lambda", &lambda, "quality/diversity trade-off");
  flags.AddInt64("seed", &seed, "random seed");
  if (!flags.Parse(argc, argv)) return 1;
  return diverse::Run(n, p, orders, lambda,
                      static_cast<std::uint64_t>(seed));
}
