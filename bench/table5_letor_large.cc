// Reproduces paper Table 5: Greedy A vs Greedy B vs LS on the top-370
// documents of one (simulated) LETOR query, p = 5..75 step 5, with wall
// times and the paper's 10x-Greedy-B LS budget.
//
//   Columns: p, GreedyA, GreedyB, LS, AF_B/A, AF_LS/B, TimeA_ms, TimeB_ms,
//            TimeA/TimeB
#include <cstdint>
#include <iostream>

#include "bench_util.h"
#include "data/letor_sim.h"
#include "util/flags.h"
#include "util/random.h"
#include "util/table.h"

namespace diverse {
namespace {

int Run(int corpus, int top_k, int p_min, int p_max, int p_step,
        double lambda, std::uint64_t seed) {
  std::cout << "Table 5: Greedy A vs Greedy B vs LS on simulated LETOR, top "
            << top_k << " documents (lambda = " << lambda << ")\n\n";
  Rng rng(seed);
  LetorConfig config;
  config.num_documents = corpus;
  const LetorQuery full = MakeLetorQuery(config, rng);
  const LetorQuery query = TopKDocuments(full, top_k);
  const ModularFunction weights(query.data.weights);
  const DiversificationProblem problem(&query.data.metric, &weights, lambda);

  TextTable table({"p", "GreedyA", "GreedyB", "LS", "AF_B/A", "AF_LS/B",
                   "TimeA_ms", "TimeB_ms", "TimeA/TimeB"});
  for (int p = p_min; p <= p_max; p += p_step) {
    const AlgorithmResult a = GreedyEdge(problem, weights, {.p = p});
    const AlgorithmResult b = GreedyVertex(problem, {.p = p});
    const AlgorithmResult ls = bench::RunPaperLs(problem, b, p);
    table.NewRow()
        .AddInt(p)
        .AddDouble(a.objective)
        .AddDouble(b.objective)
        .AddDouble(ls.objective)
        .AddDouble(a.objective > 0 ? b.objective / a.objective : 0.0)
        .AddDouble(b.objective > 0 ? ls.objective / b.objective : 0.0)
        .AddDouble(a.elapsed_seconds * 1e3)
        .AddDouble(b.elapsed_seconds * 1e3)
        .AddDouble(b.elapsed_seconds > 0
                       ? a.elapsed_seconds / b.elapsed_seconds
                       : 0.0);
  }
  table.Print(std::cout);
  return 0;
}

}  // namespace
}  // namespace diverse

int main(int argc, char** argv) {
  int corpus = 600;
  int top_k = 370;
  int p_min = 5;
  int p_max = 75;
  int p_step = 5;
  double lambda = 0.2;
  std::int64_t seed = 5;
  diverse::FlagSet flags("Paper Table 5: LETOR top-370 at scale");
  flags.AddInt("corpus", &corpus, "documents retrieved for the query");
  flags.AddInt("topk", &top_k, "documents kept (by relevance)");
  flags.AddInt("pmin", &p_min, "smallest cardinality");
  flags.AddInt("pmax", &p_max, "largest cardinality");
  flags.AddInt("pstep", &p_step, "cardinality step");
  flags.AddDouble("lambda", &lambda, "quality/diversity trade-off");
  flags.AddInt64("seed", &seed, "random seed");
  if (!flags.Parse(argc, argv)) return 1;
  return diverse::Run(corpus, top_k, p_min, p_max, p_step, lambda,
                      static_cast<std::uint64_t>(seed));
}
