// Ablation E: batch-d greedy (Birnbaum–Goldman, discussed in paper §3).
// Choosing d vertices per round tightens the dispersion guarantee from
// (2p-2)/(p-1) at d = 1 toward 1 as d -> p, at cost O(n^d) per round. This
// bench reports observed quality and time for d in {1, 2, 3} against OPT
// and the theoretical bound.
#include <cstdint>
#include <iostream>

#include "algorithms/batch_greedy.h"
#include "algorithms/brute_force.h"
#include "bench_util.h"
#include "data/synthetic.h"
#include "util/flags.h"
#include "util/random.h"
#include "util/table.h"

namespace diverse {
namespace {

int Run(int n, int p, int trials, double lambda, std::uint64_t seed) {
  std::cout << "Ablation E: batch greedy block size (N = " << n
            << ", p = " << p << ", lambda = " << lambda << ")\n\n";
  TextTable table({"d", "objective", "AF", "bound", "time_ms"});
  for (int d : {1, 2, 3}) {
    double obj_sum = 0.0;
    double af_sum = 0.0;
    double time_sum = 0.0;
    Rng rng(seed);
    for (int t = 0; t < trials; ++t) {
      Dataset data = MakeUniformSynthetic(n, rng);
      const ModularFunction weights(data.weights);
      const DiversificationProblem problem(&data.metric, &weights, lambda);
      const AlgorithmResult batch = BatchGreedy(problem, {.p = p, .batch = d});
      const double opt = BruteForceCardinality(problem, {.p = p}).objective;
      obj_sum += batch.objective;
      af_sum += bench::Af(opt, batch.objective);
      time_sum += batch.elapsed_seconds;
    }
    table.NewRow()
        .AddInt(d)
        .AddDouble(obj_sum / trials)
        .AddDouble(af_sum / trials)
        .AddDouble(BatchGreedyDispersionBound(p, d))
        .AddDouble(time_sum / trials * 1e3);
  }
  table.Print(std::cout);
  std::cout << "\n(expected shape: AF creeps toward 1 as d grows, time "
               "grows by ~n per increment of d)\n";
  return 0;
}

}  // namespace
}  // namespace diverse

int main(int argc, char** argv) {
  int n = 30;
  int p = 6;
  int trials = 5;
  double lambda = 0.2;
  std::int64_t seed = 13;
  diverse::FlagSet flags("Ablation E: batch greedy block size");
  flags.AddInt("n", &n, "universe size");
  flags.AddInt("p", &p, "solution cardinality");
  flags.AddInt("trials", &trials, "trials to average");
  flags.AddDouble("lambda", &lambda, "quality/diversity trade-off");
  flags.AddInt64("seed", &seed, "random seed");
  if (!flags.Parse(argc, argv)) return 1;
  return diverse::Run(n, p, trials, lambda,
                      static_cast<std::uint64_t>(seed));
}
