// Reproduces paper Table 4: Greedy A vs Greedy B vs OPT on the top-50
// documents of one (simulated) LETOR query, p = 3..7, lambda = 0.2.
// Quality = sum of relevance grades; distance = cosine distance of feature
// vectors (see data/letor_sim.h and DESIGN.md for the substitution).
//
//   Columns: p, OPT, GreedyA, GreedyB, AF_GreedyA, AF_GreedyB, AF_B/A
#include <cstdint>
#include <iostream>

#include "algorithms/brute_force.h"
#include "bench_util.h"
#include "data/letor_sim.h"
#include "util/flags.h"
#include "util/random.h"
#include "util/table.h"

namespace diverse {
namespace {

int Run(int corpus, int top_k, int p_min, int p_max, double lambda,
        std::uint64_t seed) {
  std::cout << "Table 4: Greedy A vs Greedy B on simulated LETOR, top "
            << top_k << " documents (lambda = " << lambda << ")\n\n";
  Rng rng(seed);
  LetorConfig config;
  config.num_documents = corpus;
  const LetorQuery full = MakeLetorQuery(config, rng);
  const LetorQuery query = TopKDocuments(full, top_k);
  const ModularFunction weights(query.data.weights);
  const DiversificationProblem problem(&query.data.metric, &weights, lambda);

  TextTable table({"p", "OPT", "GreedyA", "GreedyB", "AF_GreedyA",
                   "AF_GreedyB", "AF_B/A"});
  for (int p = p_min; p <= p_max; ++p) {
    const double opt = BruteForceCardinality(problem, {.p = p}).objective;
    const double a = GreedyEdge(problem, weights, {.p = p}).objective;
    const double b = GreedyVertex(problem, {.p = p}).objective;
    table.NewRow()
        .AddInt(p)
        .AddDouble(opt)
        .AddDouble(a)
        .AddDouble(b)
        .AddDouble(bench::Af(opt, a))
        .AddDouble(bench::Af(opt, b))
        .AddDouble(a > 0 ? b / a : 0.0);
  }
  table.Print(std::cout);
  return 0;
}

}  // namespace
}  // namespace diverse

int main(int argc, char** argv) {
  int corpus = 370;
  int top_k = 50;
  int p_min = 3;
  int p_max = 7;
  double lambda = 0.2;
  std::int64_t seed = 4;
  diverse::FlagSet flags("Paper Table 4: LETOR top-50 with OPT");
  flags.AddInt("corpus", &corpus, "documents retrieved for the query");
  flags.AddInt("topk", &top_k, "documents kept (by relevance)");
  flags.AddInt("pmin", &p_min, "smallest cardinality");
  flags.AddInt("pmax", &p_max, "largest cardinality");
  flags.AddDouble("lambda", &lambda, "quality/diversity trade-off");
  flags.AddInt64("seed", &seed, "random seed");
  if (!flags.Parse(argc, argv)) return 1;
  return diverse::Run(corpus, top_k, p_min, p_max, lambda,
                      static_cast<std::uint64_t>(seed));
}
