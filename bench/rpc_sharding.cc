// RPC sharding bench: coordinator fan-out over InProcessTransport vs the
// in-process sharded plan vs single-node greedy, at several shard counts,
// plus the replica-sync publish path. Emits BENCH_rpc.json.
//
// The in-process transport isolates protocol cost (encode/decode, replica
// snapshot, fan-out threads, merge) from network cost, so rpc_overhead_x
// — remote wall time over in-process-sharded wall time — is the honest
// price of the wire, comparable across PRs. Every remote record also
// re-checks bit-equality against the in-process plan (bit_equal field);
// a 0 there is a correctness regression, not a perf one.
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "bench_json.h"
#include "data/synthetic.h"
#include "engine/engine.h"
#include "engine/execution_plan.h"
#include "engine/workload.h"
#include "rpc/coordinator.h"
#include "rpc/shard_node.h"
#include "rpc/transport.h"
#include "util/flags.h"
#include "util/random.h"
#include "util/timer.h"

namespace diverse {
namespace {

struct Trace {
  std::vector<engine::Query> queries;
};

Trace MakeTrace(int n, int queries, int p, int shards, std::uint64_t seed) {
  Rng rng(seed);
  engine::SyntheticQueryConfig config;
  config.p = p;
  config.universe = n;
  config.sharded = shards > 0;
  config.num_shards = shards;
  Trace trace;
  trace.queries.reserve(queries);
  for (int i = 0; i < queries; ++i) {
    trace.queries.push_back(engine::MakeSyntheticQuery(config, rng));
  }
  return trace;
}

int Run(int n, int queries, int p, std::uint64_t seed) {
  Rng rng(seed);
  const Dataset data = MakeUniformSynthetic(n, rng);
  Dataset mine = data;
  engine::Corpus corpus(mine.weights, std::move(mine.metric), 0.3);
  const engine::SnapshotPtr snapshot = corpus.snapshot();

  bench::BenchJson json("rpc");

  // Baseline: single-node greedy over all candidates.
  {
    const Trace trace = MakeTrace(n, queries, p, /*shards=*/0, seed + 1);
    WallTimer wall;
    for (const engine::Query& query : trace.queries) {
      engine::ExecuteQuery(*snapshot, query);
    }
    const double seconds = wall.Seconds();
    json.NewRecord("single")
        .Add("n", static_cast<long long>(n))
        .Add("queries", static_cast<long long>(queries))
        .Add("wall_seconds", seconds)
        .Add("qps", queries / seconds);
  }

  for (const int shards : {2, 4, 8}) {
    const Trace trace = MakeTrace(n, queries, p, shards, seed + 1);

    // In-process sharded plan (the reference the coordinator must match).
    double sharded_seconds;
    {
      WallTimer wall;
      for (const engine::Query& query : trace.queries) {
        engine::ExecuteQuery(*snapshot, query);
      }
      sharded_seconds = wall.Seconds();
      json.NewRecord("sharded_s" + std::to_string(shards))
          .Add("n", static_cast<long long>(n))
          .Add("shards", static_cast<long long>(shards))
          .Add("wall_seconds", sharded_seconds)
          .Add("qps", queries / sharded_seconds);
    }

    // Remote plan: one replica node per shard, in-process transport.
    {
      std::vector<std::unique_ptr<rpc::ShardNode>> nodes;
      std::vector<std::unique_ptr<rpc::InProcessTransport>> transports;
      std::vector<rpc::Transport*> raw;
      for (int i = 0; i < shards; ++i) {
        Dataset replica = data;
        nodes.push_back(std::make_unique<rpc::ShardNode>(
            replica.weights, std::move(replica.metric), 0.3));
        transports.push_back(
            std::make_unique<rpc::InProcessTransport>(nodes.back().get()));
        raw.push_back(transports.back().get());
      }
      rpc::Coordinator coordinator(raw);
      engine::PlanDefaults defaults;
      defaults.remote = &coordinator;

      // Time only the remote calls; the interleaved in-process reference
      // runs off the clock (subtracting a separately measured loop would
      // let run-to-run noise contaminate the overhead ratio).
      long long equal = 1;
      double seconds = 0.0;
      for (engine::Query query : trace.queries) {
        query.plan = engine::PlanKind::kRemoteSharded;
        WallTimer call;
        const engine::QueryResult remote =
            engine::ExecuteQuery(*snapshot, query, defaults);
        seconds += call.Seconds();
        query.plan = engine::PlanKind::kSharded;
        const engine::QueryResult local =
            engine::ExecuteQuery(*snapshot, query, defaults);
        if (remote.elements != local.elements ||
            remote.objective != local.objective) {
          equal = 0;
        }
      }
      json.NewRecord("remote_s" + std::to_string(shards))
          .Add("n", static_cast<long long>(n))
          .Add("shards", static_cast<long long>(shards))
          .Add("wall_seconds", seconds)
          .Add("qps", queries / seconds)
          .Add("rpc_overhead_x", seconds / sharded_seconds)
          .Add("bit_equal", equal);

      // Replica-sync path: publish epochs to all nodes.
      Rng urng(seed + 2);
      const int epochs = 50;
      WallTimer publish_wall;
      for (int e = 0; e < epochs; ++e) {
        coordinator.PublishEpoch(
            static_cast<std::uint64_t>(e) + 1,
            engine::MakeSyntheticEpoch(n, /*churn=*/false, e, urng));
      }
      const double publish_seconds = publish_wall.Seconds();
      json.NewRecord("publish_s" + std::to_string(shards))
          .Add("n", static_cast<long long>(n))
          .Add("shards", static_cast<long long>(shards))
          .Add("epochs", static_cast<long long>(epochs))
          .Add("wall_seconds", publish_seconds)
          .Add("epochs_per_second", epochs / publish_seconds);
    }
  }

  json.WriteFile();
  return 0;
}

}  // namespace
}  // namespace diverse

int main(int argc, char** argv) {
  int n = 600;
  int queries = 20;
  int p = 10;
  std::int64_t seed = 1;
  diverse::FlagSet flags(
      "rpc_sharding — coordinator-vs-in-process sharded plan scaling over "
      "the in-process transport; writes BENCH_rpc.json");
  flags.AddInt("n", &n, "corpus size");
  flags.AddInt("queries", &queries, "queries per configuration");
  flags.AddInt("p", &p, "subset size per query");
  flags.AddInt64("seed", &seed, "random seed");
  if (!flags.Parse(argc, argv)) return 1;
  return diverse::Run(n, queries, p, static_cast<std::uint64_t>(seed));
}
