// Micro-benchmarks for the matroid independence oracles — the inner loop
// of matroid local search (paper §5). CanExchange cost dominates LS
// iteration cost, so each oracle's exchange path is measured.
#include <benchmark/benchmark.h>

#include <utility>
#include <vector>

#include "matroid/graphic_matroid.h"
#include "matroid/laminar_matroid.h"
#include "matroid/partition_matroid.h"
#include "matroid/transversal_matroid.h"
#include "matroid/truncated_matroid.h"
#include "matroid/uniform_matroid.h"
#include "util/random.h"

namespace diverse {
namespace {

std::vector<int> FirstK(int k) {
  std::vector<int> v(k);
  for (int i = 0; i < k; ++i) v[i] = i;
  return v;
}

void BM_UniformCanExchange(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const UniformMatroid m(n, n / 4);
  const std::vector<int> set = FirstK(n / 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.CanExchange(set, 0, n - 1));
  }
}
BENCHMARK(BM_UniformCanExchange)->Arg(100)->Arg(1000);

void BM_PartitionCanExchange(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::vector<int> block_of(n);
  for (int i = 0; i < n; ++i) block_of[i] = i % 10;
  const PartitionMatroid m(block_of, std::vector<int>(10, n / 20));
  const std::vector<int> set = FirstK(n / 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.CanExchange(set, 0, n - 1));
  }
}
BENCHMARK(BM_PartitionCanExchange)->Arg(100)->Arg(1000);

void BM_TransversalIsIndependent(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(1);
  std::vector<std::vector<int>> collections(n / 4);
  for (auto& c : collections) {
    c = rng.SampleWithoutReplacement(n, 8);
  }
  const TransversalMatroid m(n, collections);
  const std::vector<int> set = FirstK(n / 8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.IsIndependent(set));
  }
}
BENCHMARK(BM_TransversalIsIndependent)->Arg(64)->Arg(256);

void BM_GraphicIsIndependent(benchmark::State& state) {
  const int vertices = static_cast<int>(state.range(0));
  Rng rng(2);
  std::vector<std::pair<int, int>> edges;
  for (int e = 0; e < 4 * vertices; ++e) {
    edges.emplace_back(rng.UniformInt(0, vertices - 1),
                       rng.UniformInt(0, vertices - 1));
  }
  const GraphicMatroid m(vertices, edges);
  const std::vector<int> set = FirstK(vertices / 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.IsIndependent(set));
  }
}
BENCHMARK(BM_GraphicIsIndependent)->Arg(64)->Arg(512);

void BM_LaminarIsIndependent(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  // Nested halves: {0..n-1}, {0..n/2-1}, {0..n/4-1}, ...
  std::vector<std::vector<int>> family;
  std::vector<int> caps;
  for (int span = n; span >= 2; span /= 2) {
    family.push_back(FirstK(span));
    caps.push_back(span / 2);
  }
  const LaminarMatroid m(n, family, caps);
  const std::vector<int> set = FirstK(n / 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.IsIndependent(set));
  }
}
BENCHMARK(BM_LaminarIsIndependent)->Arg(64)->Arg(512);

void BM_TruncatedOverhead(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::vector<int> block_of(n);
  for (int i = 0; i < n; ++i) block_of[i] = i % 10;
  const PartitionMatroid base(block_of, std::vector<int>(10, n / 10));
  const TruncatedMatroid m(&base, n / 4);
  const std::vector<int> set = FirstK(n / 8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.IsIndependent(set));
  }
}
BENCHMARK(BM_TruncatedOverhead)->Arg(100)->Arg(1000);

}  // namespace
}  // namespace diverse

BENCHMARK_MAIN();
