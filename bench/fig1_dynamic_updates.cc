// Reproduces paper Figure 1: worst observed approximation ratio of the
// oblivious single-swap update rule in dynamically changing environments,
// as a function of lambda, for the three perturbation environments
// (VPERTURBATION / EPERTURBATION / MPERTURBATION). Each cell is the worst
// ratio over `runs` independent simulations of `steps` perturbation+update
// steps, with OPT recomputed by brute force after every step.
//
// The paper uses its N = 50 synthetic universe; exact OPT after every one
// of runs x steps x |lambda| x 3 perturbations makes that expensive, so the
// default here is a smaller universe (n = 20, p = 4) which preserves the
// two qualitative findings: ratios stay far below the provable 3, and they
// decrease toward 1 as lambda grows. Scale up with --n / --runs for a
// closer replication.
#include <cstdint>
#include <iostream>

#include "bench_json.h"
#include "dynamic/simulator.h"
#include "util/flags.h"
#include "util/table.h"
#include "util/timer.h"

namespace diverse {
namespace {

int Run(int n, int p, int steps, int runs, double lambda_min,
        double lambda_max, double lambda_step, std::uint64_t seed) {
  std::cout << "Figure 1: worst approximation ratio under dynamic updates "
               "(n = "
            << n << ", p = " << p << ", " << runs << " runs x " << steps
            << " steps)\n\n";
  TextTable table({"lambda", "VPERTURBATION", "EPERTURBATION",
                   "MPERTURBATION"});
  bench::BenchJson json("fig1_dynamic_updates");
  WallTimer total_timer;
  for (double lambda = lambda_min; lambda <= lambda_max + 1e-9;
       lambda += lambda_step) {
    table.NewRow().AddDouble(lambda, 2);
    for (PerturbationEnvironment env :
         {PerturbationEnvironment::kVertex, PerturbationEnvironment::kEdge,
          PerturbationEnvironment::kMixed}) {
      DynamicSimulationConfig config;
      config.n = n;
      config.p = p;
      config.lambda = lambda;
      config.steps = steps;
      config.runs = runs;
      config.environment = env;
      config.seed = seed;
      WallTimer cell_timer;
      const double worst = RunDynamicSimulation(config).worst_ratio;
      table.AddDouble(worst, 4);
      json.NewRecord("cell")
          .Add("environment", ToString(env))
          .Add("lambda", lambda)
          .Add("n", static_cast<long long>(n))
          .Add("p", static_cast<long long>(p))
          .Add("steps", static_cast<long long>(steps))
          .Add("runs", static_cast<long long>(runs))
          .Add("worst_ratio", worst)
          .Add("seconds", cell_timer.Seconds());
    }
  }
  json.NewRecord("total").Add("seconds", total_timer.Seconds());
  table.Print(std::cout);
  std::cout << "\n(each cell: max over runs*steps of OPT/phi(S) after a "
               "single oblivious update)\n";
  json.WriteFile();
  return 0;
}

}  // namespace
}  // namespace diverse

int main(int argc, char** argv) {
  int n = 20;
  int p = 4;
  int steps = 20;
  int runs = 25;
  double lambda_min = 0.1;
  double lambda_max = 1.0;
  double lambda_step = 0.1;
  std::int64_t seed = 9;
  diverse::FlagSet flags("Paper Figure 1: dynamic-update approximation");
  flags.AddInt("n", &n, "universe size");
  flags.AddInt("p", &p, "solution cardinality");
  flags.AddInt("steps", &steps, "perturbations per run");
  flags.AddInt("runs", &runs, "independent runs per cell");
  flags.AddDouble("lambda_min", &lambda_min, "smallest lambda");
  flags.AddDouble("lambda_max", &lambda_max, "largest lambda");
  flags.AddDouble("lambda_step", &lambda_step, "lambda grid step");
  flags.AddInt64("seed", &seed, "random seed");
  if (!flags.Parse(argc, argv)) return 1;
  return diverse::Run(n, p, steps, runs, lambda_min, lambda_max, lambda_step,
                      static_cast<std::uint64_t>(seed));
}
