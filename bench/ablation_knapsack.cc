// Ablation I: knapsack-constrained diversification (paper §8 open
// question). Measures the density greedy with partial-enumeration seeds of
// size 0/1/2 against the exact knapsack optimum on small instances —
// empirical evidence toward the conjectured constant factor.
#include <cstdint>
#include <iostream>

#include "algorithms/knapsack_greedy.h"
#include "bench_util.h"
#include "data/synthetic.h"
#include "util/flags.h"
#include "util/random.h"
#include "util/table.h"

namespace diverse {
namespace {

int Run(int n, int trials, double lambda, double budget,
        std::uint64_t seed) {
  std::cout << "Ablation I: knapsack-constrained greedy vs exact (N = " << n
            << ", budget = " << budget << ", lambda = " << lambda << ")\n\n";
  TextTable table({"seed_size", "AF_mean", "AF_worst", "time_ms"});
  for (int seed_size : {0, 1, 2}) {
    double af_sum = 0.0;
    double af_worst = 1.0;
    double time_sum = 0.0;
    Rng rng(seed);
    for (int t = 0; t < trials; ++t) {
      Dataset data = MakeUniformSynthetic(n, rng);
      const ModularFunction weights(data.weights);
      const DiversificationProblem problem(&data.metric, &weights, lambda);
      KnapsackOptions options;
      options.costs.resize(n);
      for (double& c : options.costs) c = rng.Uniform(0.2, 1.0);
      options.budget = budget;
      options.seed_size = seed_size;
      const AlgorithmResult greedy = KnapsackGreedy(problem, options);
      const AlgorithmResult opt =
          BruteForceKnapsack(problem, options.costs, options.budget);
      const double af = bench::Af(opt.objective, greedy.objective);
      af_sum += af;
      af_worst = std::max(af_worst, af);
      time_sum += greedy.elapsed_seconds;
    }
    table.NewRow()
        .AddInt(seed_size)
        .AddDouble(af_sum / trials)
        .AddDouble(af_worst)
        .AddDouble(time_sum / trials * 1e3);
  }
  table.Print(std::cout);
  std::cout << "\n(expected shape: AF improves with seed size and stays "
               "well below the open-question threshold of 2)\n";
  return 0;
}

}  // namespace
}  // namespace diverse

int main(int argc, char** argv) {
  int n = 16;
  int trials = 8;
  double lambda = 0.2;
  double budget = 2.5;
  std::int64_t seed = 17;
  diverse::FlagSet flags("Ablation I: knapsack constraint");
  flags.AddInt("n", &n, "universe size");
  flags.AddInt("trials", &trials, "trials to average");
  flags.AddDouble("lambda", &lambda, "quality/diversity trade-off");
  flags.AddDouble("budget", &budget, "knapsack budget");
  flags.AddInt64("seed", &seed, "random seed");
  if (!flags.Parse(argc, argv)) return 1;
  return diverse::Run(n, trials, lambda, budget,
                      static_cast<std::uint64_t>(seed));
}
