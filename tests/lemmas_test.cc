// Numerical verification of every lemma the paper's proofs rest on,
// property-checked over random instances. These tests pin the library's
// primitives (metric sums, submodular marginals, matroid exchanges) to the
// exact inequalities used in Theorems 1 and 2.
#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <vector>

#include "data/synthetic.h"
#include "matroid/matroid.h"
#include "matroid/partition_matroid.h"
#include "matroid/transversal_matroid.h"
#include "matroid/uniform_matroid.h"
#include "metric/metric_utils.h"
#include "submodular/coverage_function.h"
#include "submodular/facility_location.h"
#include "util/random.h"

namespace diverse {
namespace {

// Random monotone submodular function for the lemma checks.
CoverageFunction RandomCoverage(int n, Rng& rng) {
  std::vector<std::vector<int>> covers(n);
  for (auto& c : covers) {
    c = rng.SampleWithoutReplacement(10, rng.UniformInt(1, 6));
  }
  std::vector<double> w(10);
  for (double& x : w) x = rng.Uniform(0.1, 1.0);
  return CoverageFunction(std::move(covers), std::move(w));
}

// Union helper respecting "sets as sorted vectors".
std::vector<int> Union(std::vector<int> a, const std::vector<int>& b) {
  a.insert(a.end(), b.begin(), b.end());
  std::sort(a.begin(), a.end());
  a.erase(std::unique(a.begin(), a.end()), a.end());
  return a;
}

std::vector<int> Minus(const std::vector<int>& a, const std::vector<int>& b) {
  std::vector<int> out;
  for (int x : a) {
    if (std::find(b.begin(), b.end(), x) == b.end()) out.push_back(x);
  }
  return out;
}

// Lemma 1 (Ravi et al.): (|X| - 1) d(X, Y) >= |Y| d(X) for disjoint X, Y.
TEST(PaperLemmasTest, Lemma1) {
  for (int seed = 1; seed <= 40; ++seed) {
    Rng rng(seed);
    Dataset data = MakeUniformSynthetic(16, rng);
    const int x_size = rng.UniformInt(2, 7);
    const int y_size = rng.UniformInt(1, 7);
    const auto sample =
        rng.SampleWithoutReplacement(data.size(), x_size + y_size);
    const std::vector<int> x(sample.begin(), sample.begin() + x_size);
    const std::vector<int> y(sample.begin() + x_size, sample.end());
    EXPECT_GE((x_size - 1) * SumBetween(data.metric, x, y) + 1e-9,
              y_size * SumPairwise(data.metric, x));
  }
}

// Lemma 3: f(S) + sum_i f(S - b_i + c_i) >= f(S - B) + sum_i f(S + c_i)
// for S containing B = {b_1..b_t}, C = {c_1..c_t} disjoint from S.
TEST(PaperLemmasTest, Lemma3) {
  for (int seed = 1; seed <= 25; ++seed) {
    Rng rng(seed + 50);
    const CoverageFunction f = RandomCoverage(14, rng);
    const int t = rng.UniformInt(2, 4);
    const int s_extra = rng.UniformInt(0, 4);
    const auto sample = rng.SampleWithoutReplacement(14, 2 * t + s_extra);
    const std::vector<int> b(sample.begin(), sample.begin() + t);
    const std::vector<int> c(sample.begin() + t, sample.begin() + 2 * t);
    std::vector<int> s(sample.begin() + 2 * t, sample.end());
    s.insert(s.end(), b.begin(), b.end());  // S contains B
    std::sort(s.begin(), s.end());

    double lhs = f.Value(s);
    double rhs = f.Value(Minus(s, b));
    for (int i = 0; i < t; ++i) {
      std::vector<int> swapped = Minus(s, {b[i]});
      swapped.push_back(c[i]);
      lhs += f.Value(swapped);
      rhs += f.Value(Union(s, {c[i]}));
    }
    EXPECT_GE(lhs + 1e-9, rhs) << "seed " << seed;
  }
}

// Lemma 4: sum_i f(S + c_i) >= (t - 1) f(S) + f(S + C).
TEST(PaperLemmasTest, Lemma4) {
  for (int seed = 1; seed <= 25; ++seed) {
    Rng rng(seed + 100);
    const CoverageFunction f = RandomCoverage(14, rng);
    const int t = rng.UniformInt(2, 5);
    const int s_size = rng.UniformInt(0, 6);
    const auto sample = rng.SampleWithoutReplacement(14, t + s_size);
    const std::vector<int> c(sample.begin(), sample.begin() + t);
    const std::vector<int> s(sample.begin() + t, sample.end());

    double lhs = 0.0;
    for (int i = 0; i < t; ++i) lhs += f.Value(Union(s, {c[i]}));
    const double rhs = (t - 1) * f.Value(s) + f.Value(Union(s, c));
    EXPECT_GE(lhs + 1e-9, rhs) << "seed " << seed;
  }
}

// Lemma 6: for |B| = |C| = t > 2 (disjoint),
// d(B, C) - sum_i d(b_i, c_i) >= d(C).
TEST(PaperLemmasTest, Lemma6) {
  for (int seed = 1; seed <= 40; ++seed) {
    Rng rng(seed + 150);
    Dataset data = MakeUniformSynthetic(16, rng);
    const int t = rng.UniformInt(3, 7);
    const auto sample = rng.SampleWithoutReplacement(16, 2 * t);
    const std::vector<int> b(sample.begin(), sample.begin() + t);
    const std::vector<int> c(sample.begin() + t, sample.end());
    double paired = 0.0;
    for (int i = 0; i < t; ++i) {
      paired += data.metric.Distance(b[i], c[i]);
    }
    EXPECT_GE(SumBetween(data.metric, b, c) - paired + 1e-9,
              SumPairwise(data.metric, c))
        << "seed " << seed;
  }
}

// Lemma 7: sum_i d(S - b_i + c_i) >= (t - 2) d(S) + d(O) where S = A + B,
// O = A + C, |B| = |C| = t >= 2 (and A non-empty when t == 2).
TEST(PaperLemmasTest, Lemma7) {
  for (int seed = 1; seed <= 40; ++seed) {
    Rng rng(seed + 200);
    Dataset data = MakeUniformSynthetic(16, rng);
    const int t = rng.UniformInt(2, 5);
    const int a_size = rng.UniformInt(1, 5);
    const auto sample = rng.SampleWithoutReplacement(16, 2 * t + a_size);
    const std::vector<int> b(sample.begin(), sample.begin() + t);
    const std::vector<int> c(sample.begin() + t, sample.begin() + 2 * t);
    const std::vector<int> a(sample.begin() + 2 * t, sample.end());
    std::vector<int> s = a;
    s.insert(s.end(), b.begin(), b.end());
    std::vector<int> o = a;
    o.insert(o.end(), c.begin(), c.end());

    double lhs = 0.0;
    for (int i = 0; i < t; ++i) {
      std::vector<int> swapped = Minus(s, {b[i]});
      swapped.push_back(c[i]);
      lhs += SumPairwise(data.metric, swapped);
    }
    const double rhs = (t - 2) * SumPairwise(data.metric, s) +
                       SumPairwise(data.metric, o);
    EXPECT_GE(lhs + 1e-9, rhs) << "seed " << seed << " t " << t;
  }
}

// Lemma 2 (Brualdi): for any two bases X, Y of a matroid there is a
// bijection g: X -> Y with X - x + g(x) independent for all x. Verified by
// finding such a bijection exhaustively (via augmenting-path matching over
// the exchange graph) on random small matroids.
TEST(PaperLemmasTest, Lemma2BrualdiExchange) {
  for (int seed = 1; seed <= 10; ++seed) {
    Rng rng(seed + 250);
    // Random transversal matroid on 8 elements.
    const int n = 8;
    const int m = rng.UniformInt(2, 4);
    std::vector<std::vector<int>> collections(m);
    for (auto& col : collections) {
      col = rng.SampleWithoutReplacement(n, rng.UniformInt(2, n));
    }
    const TransversalMatroid matroid(n, collections);
    const auto bases = EnumerateBases(matroid);
    if (bases.size() < 2) continue;
    // Pick two random bases.
    const auto& x = bases[rng.UniformInt(0, bases.size() - 1)];
    const auto& y = bases[rng.UniformInt(0, bases.size() - 1)];
    const int r = static_cast<int>(x.size());
    // Exchange feasibility matrix: ok[i][j] = X - x_i + y_j independent.
    std::vector<std::vector<int>> feasible(r);
    for (int i = 0; i < r; ++i) {
      for (int j = 0; j < r; ++j) {
        if (x[i] == y[j]) {
          feasible[i].push_back(j);
          continue;
        }
        if (std::find(x.begin(), x.end(), y[j]) != x.end()) {
          // y_j already in X - swapping x_i for it only works if x_i == y_j
          // (handled) — a duplicate would not be a set; skip.
          continue;
        }
        std::vector<int> swapped = Minus(x, {x[i]});
        swapped.push_back(y[j]);
        if (matroid.IsIndependent(swapped)) feasible[i].push_back(j);
      }
    }
    // Perfect matching must exist (Kuhn's algorithm).
    std::vector<int> match(r, -1);
    int matched = 0;
    for (int i = 0; i < r; ++i) {
      std::vector<bool> used(r, false);
      std::function<bool(int)> augment = [&](int u) -> bool {
        for (int j : feasible[u]) {
          if (used[j]) continue;
          used[j] = true;
          if (match[j] < 0 || augment(match[j])) {
            match[j] = u;
            return true;
          }
        }
        return false;
      };
      if (augment(i)) ++matched;
    }
    // A perfect exchange bijection exists when y_j in X cases are treated
    // as identity; elements shared by both bases map to themselves and are
    // feasible by construction.
    EXPECT_EQ(matched, r) << "seed " << seed;
  }
}

// Equation (4) of the proof of Theorem 1: d(A, C) + d(A) + d(C) = d(O)
// for a partition O = A + C.
TEST(PaperLemmasTest, Equation4Partition) {
  for (int seed = 1; seed <= 20; ++seed) {
    Rng rng(seed + 300);
    Dataset data = MakeUniformSynthetic(14, rng);
    const int a_size = rng.UniformInt(1, 6);
    const int c_size = rng.UniformInt(1, 6);
    const auto sample =
        rng.SampleWithoutReplacement(14, a_size + c_size);
    const std::vector<int> a(sample.begin(), sample.begin() + a_size);
    const std::vector<int> c(sample.begin() + a_size, sample.end());
    std::vector<int> o = a;
    o.insert(o.end(), c.begin(), c.end());
    EXPECT_NEAR(SumBetween(data.metric, a, c) + SumPairwise(data.metric, a) +
                    SumPairwise(data.metric, c),
                SumPairwise(data.metric, o), 1e-9);
  }
}

// Lemma 8's identity: sum_{y in Y} phi_y(S \ y) = f(Y) + 2 lambda d(Y) +
// lambda d(Z, Y) for S = Z + Y and modular f. (phi_y(S \ y) = w(y) +
// lambda d(y, S - y).)
TEST(PaperLemmasTest, Lemma8Identity) {
  for (int seed = 1; seed <= 20; ++seed) {
    Rng rng(seed + 350);
    Dataset data = MakeUniformSynthetic(14, rng);
    const double lambda = rng.Uniform(0.1, 1.0);
    const int z_size = rng.UniformInt(1, 5);
    const int y_size = rng.UniformInt(1, 5);
    const auto sample =
        rng.SampleWithoutReplacement(14, z_size + y_size);
    const std::vector<int> z(sample.begin(), sample.begin() + z_size);
    const std::vector<int> y(sample.begin() + z_size, sample.end());
    std::vector<int> s = z;
    s.insert(s.end(), y.begin(), y.end());

    double lhs = 0.0;
    for (int elem : y) {
      const std::vector<int> rest = Minus(s, {elem});
      lhs += data.weights[elem] + lambda * SumTo(data.metric, elem, rest);
    }
    double f_y = 0.0;
    for (int elem : y) f_y += data.weights[elem];
    const double rhs = f_y + 2.0 * lambda * SumPairwise(data.metric, y) +
                       lambda * SumBetween(data.metric, z, y);
    EXPECT_NEAR(lhs, rhs, 1e-9) << "seed " << seed;
  }
}

}  // namespace
}  // namespace diverse
