// Tests for the distributed two-round diversifier, the Jaccard metric and
// the submodularity-ratio estimator.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "algorithms/brute_force.h"
#include "algorithms/distributed.h"
#include "algorithms/greedy_vertex.h"
#include "core/diversification_problem.h"
#include "data/synthetic.h"
#include "metric/jaccard_metric.h"
#include "metric/metric_validation.h"
#include "submodular/coverage_function.h"
#include "submodular/function_validation.h"
#include "submodular/modular_function.h"
#include "submodular/set_function.h"
#include "util/random.h"

namespace diverse {
namespace {

TEST(DistributedTest, GreedyOnCandidatesRestrictsSelection) {
  Rng rng(1);
  Dataset data = MakeUniformSynthetic(20, rng);
  const ModularFunction weights(data.weights);
  const DiversificationProblem problem(&data.metric, &weights, 0.2);
  const std::vector<int> candidates = {2, 5, 8, 11, 14, 17};
  const AlgorithmResult result =
      GreedyVertexOnCandidates(problem, candidates, 4);
  EXPECT_EQ(result.elements.size(), 4u);
  for (int e : result.elements) {
    EXPECT_NE(std::find(candidates.begin(), candidates.end(), e),
              candidates.end());
  }
}

TEST(DistributedTest, FullCandidateSetMatchesGreedyVertex) {
  Rng rng(2);
  Dataset data = MakeUniformSynthetic(15, rng);
  const ModularFunction weights(data.weights);
  const DiversificationProblem problem(&data.metric, &weights, 0.2);
  std::vector<int> all(15);
  for (int i = 0; i < 15; ++i) all[i] = i;
  const AlgorithmResult restricted =
      GreedyVertexOnCandidates(problem, all, 5);
  const AlgorithmResult plain = GreedyVertex(problem, {.p = 5});
  EXPECT_EQ(restricted.elements, plain.elements);
}

TEST(DistributedTest, SelectsPDistinctElements) {
  Rng data_rng(3);
  Dataset data = MakeUniformSynthetic(40, data_rng);
  const ModularFunction weights(data.weights);
  const DiversificationProblem problem(&data.metric, &weights, 0.2);
  Rng rng(4);
  for (int shards : {1, 2, 4, 8}) {
    const AlgorithmResult result = DistributedGreedy(
        problem, {.p = 6, .num_shards = shards}, rng);
    EXPECT_EQ(result.elements.size(), 6u) << shards;
    const std::set<int> unique(result.elements.begin(),
                               result.elements.end());
    EXPECT_EQ(unique.size(), 6u);
    EXPECT_NEAR(result.objective, problem.Objective(result.elements), 1e-9);
  }
}

TEST(DistributedTest, OneShardEqualsSequentialGreedy) {
  Rng data_rng(5);
  Dataset data = MakeUniformSynthetic(25, data_rng);
  const ModularFunction weights(data.weights);
  const DiversificationProblem problem(&data.metric, &weights, 0.2);
  Rng rng(6);
  const AlgorithmResult dist =
      DistributedGreedy(problem, {.p = 5, .num_shards = 1}, rng);
  const AlgorithmResult seq = GreedyVertex(problem, {.p = 5});
  // Same candidate pool => same greedy trajectory => same objective.
  EXPECT_NEAR(dist.objective, seq.objective, 1e-9);
}

TEST(DistributedTest, QualityCloseToSequentialAcrossShardCounts) {
  // The two-round scheme should land within a modest factor of the
  // sequential greedy (and hence within ~2x of OPT) on random data.
  for (int seed = 1; seed <= 8; ++seed) {
    Rng data_rng(seed * 41);
    Dataset data = MakeUniformSynthetic(36, data_rng);
    const ModularFunction weights(data.weights);
    const DiversificationProblem problem(&data.metric, &weights, 0.2);
    const AlgorithmResult seq = GreedyVertex(problem, {.p = 6});
    Rng rng(seed);
    const AlgorithmResult dist =
        DistributedGreedy(problem, {.p = 6, .num_shards = 4}, rng);
    EXPECT_GE(dist.objective, 0.85 * seq.objective) << seed;
  }
}

TEST(DistributedTest, MoreShardsThanElements) {
  Rng data_rng(7);
  Dataset data = MakeUniformSynthetic(5, data_rng);
  const ModularFunction weights(data.weights);
  const DiversificationProblem problem(&data.metric, &weights, 0.2);
  Rng rng(8);
  const AlgorithmResult result =
      DistributedGreedy(problem, {.p = 3, .num_shards = 10}, rng);
  EXPECT_EQ(result.elements.size(), 3u);
}

TEST(JaccardMetricTest, KnownValues) {
  const JaccardMetric m({{1, 2, 3}, {2, 3, 4}, {5, 6}, {}});
  EXPECT_NEAR(m.Distance(0, 1), 1.0 - 2.0 / 4.0, 1e-12);
  EXPECT_DOUBLE_EQ(m.Distance(0, 2), 1.0);   // disjoint
  EXPECT_DOUBLE_EQ(m.Distance(3, 3), 0.0);   // empty vs itself
  EXPECT_DOUBLE_EQ(m.Distance(0, 3), 1.0);   // empty vs non-empty
}

TEST(JaccardMetricTest, DeduplicatesAttributes) {
  const JaccardMetric m({{1, 1, 2}, {2, 2, 2}});
  // {1,2} vs {2}: intersection 1, union 2.
  EXPECT_NEAR(m.Distance(0, 1), 0.5, 1e-12);
}

TEST(JaccardMetricTest, IsAMetricOnRandomData) {
  for (int seed = 1; seed <= 8; ++seed) {
    Rng rng(seed);
    std::vector<std::vector<int>> attrs(12);
    for (auto& a : attrs) {
      a = rng.SampleWithoutReplacement(15, rng.UniformInt(1, 8));
    }
    const JaccardMetric m(attrs);
    EXPECT_TRUE(ValidateMetric(m, 1e-12).IsMetric()) << seed;
  }
}

TEST(JaccardMetricTest, WorksAsDiversificationDistance) {
  Rng rng(9);
  std::vector<std::vector<int>> attrs(12);
  for (auto& a : attrs) {
    a = rng.SampleWithoutReplacement(10, rng.UniformInt(2, 6));
  }
  const JaccardMetric metric(attrs);
  std::vector<double> w(12);
  for (double& x : w) x = rng.Uniform(0.0, 1.0);
  const ModularFunction weights(w);
  const DiversificationProblem problem(&metric, &weights, 0.5);
  const AlgorithmResult greedy = GreedyVertex(problem, {.p = 4});
  const AlgorithmResult opt = BruteForceCardinality(problem, {.p = 4});
  EXPECT_GE(greedy.objective * 2.0 + 1e-9, opt.objective);
}

TEST(SubmodularityRatioTest, SubmodularFunctionsScoreOne) {
  Rng rng(10);
  const ModularFunction modular({0.2, 0.5, 0.9, 0.1, 0.7, 0.4});
  Rng est_rng(11);
  EXPECT_NEAR(EstimateSubmodularityRatio(modular, est_rng, 300), 1.0, 1e-9);

  std::vector<std::vector<int>> covers(8);
  for (auto& c : covers) {
    c = rng.SampleWithoutReplacement(6, rng.UniformInt(1, 4));
  }
  const CoverageFunction coverage(covers, std::vector<double>(6, 1.0));
  Rng est_rng2(12);
  EXPECT_GE(EstimateSubmodularityRatio(coverage, est_rng2, 300), 1.0 - 1e-9);
}

TEST(SubmodularityRatioTest, SupermodularFunctionScoresBelowOne) {
  // f(S) = |S|^2: sum of marginals underestimates the joint gain.
  class Square : public SetFunction {
   public:
    int ground_size() const override { return 8; }
    std::unique_ptr<SetFunctionEvaluator> MakeEvaluator() const override {
      class Eval : public SetFunctionEvaluator {
       public:
        double value() const override {
          return static_cast<double>(k_) * k_;
        }
        double Gain(int) const override { return 2.0 * k_ + 1.0; }
        void Add(int) override { ++k_; }
        void Remove(int) override { --k_; }
        void Reset() override { k_ = 0; }

       private:
        int k_ = 0;
      };
      return std::make_unique<Eval>();
    }
  };
  const Square square;
  Rng rng(13);
  const double gamma = EstimateSubmodularityRatio(square, rng, 300);
  EXPECT_LT(gamma, 0.9);
  EXPECT_GT(gamma, 0.0);
}

}  // namespace
}  // namespace diverse
