// Failover tests for the replication layers (src/replication/):
// ReplicationLog slotting/compaction, standby mirroring (epoch stream +
// acked table + snapshot transfer), and the kill-active/promote-standby
// cycle — answers must stay bit-equal to an uninterrupted
// single-coordinator run at the same corpus version, including a standby
// that was mid-snapshot-transfer when the active died (resume via the
// existing next_chunk machinery) and a stale standby whose promoted
// coordinator must quarantine a diverged node until a newer image
// replaces it.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "data/synthetic.h"
#include "engine/engine.h"
#include "engine/execution_plan.h"
#include "engine/workload.h"
#include "replication/replication_log.h"
#include "replication/standby_coordinator.h"
#include "rpc/coordinator.h"
#include "rpc/shard_node.h"
#include "rpc/transport.h"
#include "rpc/wire.h"
#include "snapshot/snapshot_codec.h"
#include "util/random.h"

namespace diverse {
namespace replication {
namespace {

using engine::CorpusUpdate;
using engine::DiversificationEngine;
using engine::PlanKind;
using engine::Query;
using engine::QueryResult;
using rpc::Coordinator;
using rpc::InProcessTransport;
using rpc::ShardNode;
using rpc::Transport;

Query MakeQuery(int universe, int p, int num_shards, std::uint64_t salt,
                Rng& rng) {
  engine::SyntheticQueryConfig config;
  config.p = p;
  config.universe = universe;
  config.sharded = true;
  config.remote = true;
  config.num_shards = num_shards;
  Query query = engine::MakeSyntheticQuery(config, rng);
  query.shard_salt = salt;
  return query;
}

void ExpectBitEqual(DiversificationEngine& engine, const Query& remote) {
  const QueryResult remote_result = engine.RunSync(remote);
  Query local = remote;
  local.plan = PlanKind::kSharded;
  const QueryResult local_result = engine.RunSync(local);
  EXPECT_TRUE(remote_result.ok);
  EXPECT_EQ(remote_result.corpus_version, local_result.corpus_version);
  EXPECT_EQ(remote_result.elements, local_result.elements);
  EXPECT_EQ(remote_result.objective, local_result.objective);
  EXPECT_EQ(remote_result.steps, local_result.steps);
}

TEST(ReplicationLogTest, AppendSliceTruncate) {
  ReplicationLog log;
  const std::vector<CorpusUpdate> e1{CorpusUpdate::SetWeight(0, 0.5)};
  const std::vector<CorpusUpdate> e2{CorpusUpdate::SetWeight(1, 0.25)};
  const std::vector<CorpusUpdate> e3{CorpusUpdate::SetWeight(2, 0.75)};
  EXPECT_EQ(log.published_version(), 0u);
  // Out-of-order slotting: version 2 first leaves a hole at slot 0.
  log.Append(2, e2);
  EXPECT_EQ(log.published_version(), 0u);
  EXPECT_EQ(log.allocated_version(), 2u);
  rpc::CorpusUpdateBatch batch;
  EXPECT_FALSE(log.Slice(0, 2, &batch));  // hole: slot 0 unfilled
  log.Append(1, e1);
  EXPECT_EQ(log.published_version(), 2u);
  ASSERT_TRUE(log.Slice(0, 2, &batch));
  EXPECT_EQ(batch.from_version, 0u);
  ASSERT_EQ(batch.epochs.size(), 2u);
  EXPECT_EQ(batch.epochs[0][0].u, 0);
  EXPECT_EQ(batch.epochs[1][0].u, 1);
  // Truncation clamps to the retained image version (none yet -> 0).
  EXPECT_EQ(log.TruncateBelow(2), 0u);
  log.Append(3, e3);
  EXPECT_EQ(log.published_version(), 3u);
}

TEST(ReplicationLogTest, AdoptImageDropsSubsumedSlots) {
  ReplicationLog log;
  log.Append(1, {std::vector<CorpusUpdate>{CorpusUpdate::SetWeight(0, 0.5)}});
  // A bootstrap standby's first contact can be an image far ahead of the
  // sparse mirrored prefix; everything below it is dead history.
  auto image = std::make_shared<const std::vector<std::uint8_t>>(
      std::vector<std::uint8_t>{1, 2, 3});
  log.AdoptImage(5, image);
  EXPECT_EQ(log.log_start(), 5u);
  EXPECT_EQ(log.published_version(), 5u);
  EXPECT_EQ(log.retained_version(), 5u);
  std::uint64_t version = 0;
  EXPECT_EQ(log.image(&version), image);
  EXPECT_EQ(version, 5u);
  // The next mirrored epoch lands at the fresh start.
  log.Append(6, {std::vector<CorpusUpdate>{CorpusUpdate::SetWeight(1, 0.1)}});
  EXPECT_EQ(log.published_version(), 6u);
  // An older image never replaces a newer one.
  log.AdoptImage(2, std::make_shared<const std::vector<std::uint8_t>>(
                        std::vector<std::uint8_t>{9}));
  EXPECT_EQ(log.retained_version(), 5u);
}

// One corpus served by `num_nodes` replicas plus a standby mirror behind
// the active coordinator.
struct FailoverCluster {
  Dataset baseline{0};
  std::vector<std::unique_ptr<ShardNode>> nodes;
  std::vector<std::unique_ptr<InProcessTransport>> transports;
  std::unique_ptr<StandbyCoordinator> standby;
  std::unique_ptr<InProcessTransport> standby_transport;
  std::unique_ptr<Coordinator> coordinator;
  std::unique_ptr<DiversificationEngine> engine;

  std::vector<Transport*> node_transports() const {
    std::vector<Transport*> raw;
    for (const auto& t : transports) raw.push_back(t.get());
    return raw;
  }

  std::uint64_t ApplyAndPublish(const std::vector<CorpusUpdate>& updates) {
    const std::uint64_t version = engine->ApplyUpdates(updates);
    coordinator->PublishEpoch(version, updates);
    return version;
  }

  // The active dies: coordinator and engine vanish, replicas and the
  // standby keep their state and transports.
  void KillActive() {
    engine.reset();
    coordinator.reset();
  }
};

FailoverCluster MakeFailoverCluster(int n, int num_nodes, std::uint64_t seed,
                                    double lambda) {
  Rng rng(seed);
  FailoverCluster cluster;
  cluster.baseline = MakeUniformSynthetic(n, rng);
  std::vector<Transport*> raw;
  for (int i = 0; i < num_nodes; ++i) {
    Dataset replica = cluster.baseline;
    cluster.nodes.push_back(std::make_unique<ShardNode>(
        replica.weights, std::move(replica.metric), lambda));
    cluster.transports.push_back(
        std::make_unique<InProcessTransport>(cluster.nodes.back().get()));
    raw.push_back(cluster.transports.back().get());
  }
  Dataset mirror = cluster.baseline;
  cluster.standby = std::make_unique<StandbyCoordinator>(
      mirror.weights, std::move(mirror.metric), lambda);
  cluster.standby_transport =
      std::make_unique<InProcessTransport>(cluster.standby.get());
  cluster.coordinator = std::make_unique<Coordinator>(
      raw, std::vector<Transport*>{cluster.standby_transport.get()},
      Coordinator::Options());
  DiversificationEngine::Options engine_options;
  engine_options.remote = cluster.coordinator.get();
  engine_options.num_workers = 1;
  Dataset mine = cluster.baseline;
  cluster.engine = std::make_unique<DiversificationEngine>(
      mine.weights, std::move(mine.metric), lambda, engine_options);
  return cluster;
}

TEST(StandbyCoordinatorTest, MirrorsEpochStreamAndAckedTable) {
  FailoverCluster cluster = MakeFailoverCluster(40, 2, 31, 0.3);
  Rng rng(32);
  std::vector<std::vector<CorpusUpdate>> epochs;
  for (int e = 0; e < 4; ++e) {
    epochs.push_back(engine::MakeSyntheticEpoch(
        cluster.engine->corpus().snapshot()->universe_size(),
        /*churn=*/true, e, rng));
    cluster.ApplyAndPublish(epochs.back());
  }
  // The standby folded the same stream to the same version and recorded
  // the epochs themselves.
  EXPECT_EQ(cluster.standby->version(), 4u);
  EXPECT_EQ(cluster.standby->log().published_version(), 4u);
  rpc::CorpusUpdateBatch mirrored;
  ASSERT_TRUE(cluster.standby->log().Slice(0, 4, &mirrored));
  for (int e = 0; e < 4; ++e) {
    ASSERT_EQ(mirrored.epochs[e].size(), epochs[e].size());
    for (std::size_t j = 0; j < epochs[e].size(); ++j) {
      EXPECT_EQ(mirrored.epochs[e][j].kind, epochs[e][j].kind);
      EXPECT_EQ(mirrored.epochs[e][j].u, epochs[e][j].u);
      EXPECT_EQ(mirrored.epochs[e][j].value, epochs[e][j].value);
    }
  }
  // The acked table mirrored both nodes at the published tip.
  EXPECT_EQ(cluster.standby->mirrored_acked(),
            (std::vector<std::uint64_t>{4, 4}));
  EXPECT_GT(cluster.coordinator->stats().acked_syncs_sent, 0);
  // The standby's fold is bit-identical to the active corpus.
  EXPECT_EQ(snapshot::EncodeState(cluster.standby->state()),
            snapshot::EncodeSnapshot(*cluster.engine->corpus().snapshot()));
}

// The acceptance cycle: kill the active, Promote() the standby, keep
// publishing THE SAME epoch stream — every answer must be bit-equal to an
// uninterrupted single-coordinator reference run at the same version.
TEST(StandbyCoordinatorTest, KillActivePromoteStandbyStaysBitEqual) {
  const int n = 60;
  const double lambda = 0.3;
  // Generate one fixed epoch stream against a scratch corpus so the
  // reference run and the failover run apply identical updates.
  std::vector<std::vector<CorpusUpdate>> epochs;
  {
    Rng seed_rng(40);
    Dataset data = MakeUniformSynthetic(n, seed_rng);
    engine::Corpus scratch(data.weights, std::move(data.metric), lambda);
    Rng rng(41);
    for (int e = 0; e < 7; ++e) {
      epochs.push_back(engine::MakeSyntheticEpoch(
          scratch.snapshot()->universe_size(), /*churn=*/true, e, rng));
      scratch.Apply(epochs.back());
    }
  }

  // Reference: one engine, no failure, all 7 epochs.
  Rng ref_rng(40);
  Dataset ref_data = MakeUniformSynthetic(n, ref_rng);
  DiversificationEngine reference(ref_data.weights,
                                  std::move(ref_data.metric), lambda, {});
  // Failover run: active + 2 replicas + standby, first 4 epochs.
  FailoverCluster cluster = MakeFailoverCluster(n, 2, 40, lambda);
  for (int e = 0; e < 4; ++e) {
    reference.ApplyUpdates(epochs[e]);
    cluster.ApplyAndPublish(epochs[e]);
  }
  Rng qrng(42);
  ExpectBitEqual(*cluster.engine, MakeQuery(n, 8, 4, qrng.NextSeed(), qrng));

  // Active dies. Promote the standby and serve from its fold.
  cluster.KillActive();
  std::unique_ptr<Coordinator> promoted =
      cluster.standby->Promote(cluster.node_transports());
  EXPECT_TRUE(cluster.standby->promoted());
  EXPECT_EQ(promoted->published_version(), 4u);
  DiversificationEngine::Options engine_options;
  engine_options.remote = promoted.get();
  engine_options.num_workers = 1;
  DiversificationEngine takeover(cluster.standby->state(), engine_options);
  EXPECT_EQ(takeover.corpus().version(), 4u);

  // Queries at the mirrored tip are served remotely (nodes are at 4 and
  // the promoted tracking knows it from the probe) and stay bit-equal.
  ExpectBitEqual(takeover, MakeQuery(n, 8, 4, qrng.NextSeed(), qrng));

  // Publishing resumes from the mirrored log tail with the same stream.
  for (int e = 4; e < 7; ++e) {
    reference.ApplyUpdates(epochs[e]);
    const std::uint64_t version = takeover.ApplyUpdates(epochs[e]);
    promoted->PublishEpoch(version, epochs[e]);
  }
  EXPECT_EQ(promoted->published_version(), 7u);
  for (const auto& node : cluster.nodes) EXPECT_EQ(node->version(), 7u);

  // Bit-equality against the NEVER-FAILED reference at the same version:
  // same query, reference's in-process sharded answer vs the promoted
  // remote answer.
  const engine::SnapshotPtr ref_snapshot = reference.corpus().snapshot();
  ASSERT_EQ(ref_snapshot->version(), 7u);
  for (int q = 0; q < 3; ++q) {
    Query query = MakeQuery(ref_snapshot->universe_size(), 8, 4,
                            qrng.NextSeed(), qrng);
    const QueryResult remote = takeover.RunSync(query);
    Query local = query;
    local.plan = PlanKind::kSharded;
    const QueryResult expected = engine::ExecuteQuery(
        *ref_snapshot, local, engine::PlanDefaults{});
    EXPECT_TRUE(remote.ok);
    EXPECT_EQ(remote.corpus_version, 7u);
    EXPECT_EQ(remote.elements, expected.elements);
    EXPECT_EQ(remote.objective, expected.objective);
  }
  const Coordinator::Stats stats = promoted->stats();
  EXPECT_GT(stats.remote_shards, 0);
  EXPECT_EQ(stats.local_fallbacks, 0);
}

TEST(StandbyCoordinatorTest, PromotedStandbyFencesMirrorTraffic) {
  FailoverCluster cluster = MakeFailoverCluster(30, 1, 51, 0.3);
  Rng rng(52);
  cluster.ApplyAndPublish(
      engine::MakeSyntheticEpoch(30, /*churn=*/false, 0, rng));
  cluster.KillActive();
  std::unique_ptr<Coordinator> promoted =
      cluster.standby->Promote(cluster.node_transports());
  // A zombie active's publish is refused with a hard error, not acked.
  rpc::CorpusUpdateBatch zombie;
  zombie.from_version = 1;
  zombie.epochs.push_back({CorpusUpdate::SetWeight(0, 0.9)});
  rpc::UpdateAck ack;
  ASSERT_TRUE(rpc::Decode(cluster.standby->Handle(rpc::Encode(zombie)), &ack));
  EXPECT_EQ(ack.status, rpc::RpcStatus::kError);
  EXPECT_EQ(cluster.standby->version(), 1u);
}

// Transport that fails every Call once its budget runs out — for cutting
// a snapshot transfer off mid-stream.
class BudgetedTransport : public Transport {
 public:
  explicit BudgetedTransport(rpc::Handler* handler) : handler_(handler) {}
  bool Call(const std::vector<std::uint8_t>& request,
            std::vector<std::uint8_t>* response) override {
    if (budget_ == 0) return false;
    if (budget_ > 0) --budget_;
    *response = handler_->Handle(request);
    return true;
  }
  void set_budget(int budget) { budget_ = budget; }  // -1 = unlimited

 private:
  rpc::Handler* handler_;
  int budget_ = -1;
};

// A bootstrap standby was MID-SNAPSHOT-TRANSFER when the active died.
// The successor coordinator re-encodes the same corpus version into a
// bit-identical image (deterministic fold => deterministic encode), so
// the standby's next_chunk resume machinery continues the transfer where
// the dead active stopped — every chunk crosses the wire exactly once
// across both coordinator lifetimes — and the standby then promotes.
TEST(StandbyCoordinatorTest, MidTransferStandbyResumesAcrossActiveDeath) {
  const int n = 40;
  Rng rng(61);
  const Dataset data = MakeUniformSynthetic(n, rng);
  Dataset replica = data;
  ShardNode node(replica.weights, std::move(replica.metric), 0.3);
  InProcessTransport node_transport(&node);

  StandbyCoordinator standby;  // empty bootstrap standby
  EXPECT_TRUE(standby.awaiting_bootstrap());
  BudgetedTransport standby_transport(&standby);

  Coordinator::Options options;
  options.snapshot_chunk_bytes = 512;
  DiversificationEngine::Options engine_options;
  engine_options.num_workers = 1;
  Dataset mine = data;
  DiversificationEngine engine(mine.weights, std::move(mine.metric), 0.3,
                               engine_options);
  const std::vector<CorpusUpdate> updates =
      engine::MakeSyntheticEpoch(n, /*churn=*/false, 0, rng);
  const std::uint32_t num_chunks = static_cast<std::uint32_t>(
      (snapshot::EncodedSnapshotBytes(n) + 511) / 512);
  ASSERT_GT(num_chunks, 5u);

  {
    Coordinator active({&node_transport}, {&standby_transport}, options);
    active.PublishEpoch(engine.ApplyUpdates(updates), updates);
    active.CompactLog(*engine.corpus().snapshot());
    EXPECT_EQ(active.retained_snapshot_version(), 1u);
    // Budget: 1 refused epoch batch + the offer + 3 chunks, then the
    // wire dies mid-transfer...
    standby_transport.set_budget(5);
    const int mirror = active.num_nodes();  // first mirror index
    EXPECT_FALSE(active.sync().CatchUpTarget(mirror, 0, 1));
    EXPECT_EQ(standby.node().stats().snapshot_chunks, 3);
    EXPECT_TRUE(standby.awaiting_bootstrap());
    // ...and the active dies with the transfer incomplete.
  }

  // Successor active (fresh empty log — a restarted process). Its first
  // CompactLog re-encodes the SAME corpus version: bit-identical bytes,
  // so the standby's pending transfer resumes at chunk 3.
  standby_transport.set_budget(-1);
  Coordinator successor({&node_transport}, {&standby_transport}, options);
  successor.CompactLog(*engine.corpus().snapshot());
  ASSERT_TRUE(successor.sync().CatchUpTarget(successor.num_nodes(), 0, 1));
  EXPECT_FALSE(standby.awaiting_bootstrap());
  EXPECT_EQ(standby.version(), 1u);
  const ShardNode::Stats standby_stats = standby.node().stats();
  EXPECT_EQ(standby_stats.snapshots_installed, 1);
  // Exactly once per chunk, across BOTH coordinators.
  EXPECT_EQ(standby_stats.snapshot_chunks,
            static_cast<long long>(num_chunks));
  EXPECT_EQ(successor.stats().snapshot_chunks_sent,
            static_cast<long long>(num_chunks - 3));
  // The standby's mirror log adopted the image (log_start jumped to 1).
  EXPECT_EQ(standby.log().retained_version(), 1u);
  EXPECT_EQ(standby.log().log_start(), 1u);

  // The bootstrapped standby is promotable and serves bit-equal.
  std::unique_ptr<Coordinator> promoted = standby.Promote({&node_transport});
  DiversificationEngine::Options takeover_options;
  takeover_options.remote = promoted.get();
  takeover_options.num_workers = 1;
  DiversificationEngine takeover(standby.state(), takeover_options);
  EXPECT_EQ(takeover.corpus().version(), 1u);
  Rng qrng(62);
  ExpectBitEqual(takeover, MakeQuery(n, 7, 4, qrng.NextSeed(), qrng));
  EXPECT_GT(promoted->stats().remote_shards, 0);
}

// A standby restarted from its own checkpoint (mid-history CorpusState
// constructor) must seed its mirror log AT the restored version — left
// at log_start 0, the unfillable slots below would pin
// published_version at 0 and make the standby unpromotable.
TEST(StandbyCoordinatorTest, CheckpointRestartedStandbyIsPromotable) {
  const int n = 40;
  FailoverCluster cluster = MakeFailoverCluster(n, 1, 81, 0.3);
  Rng rng(82);
  for (int e = 0; e < 2; ++e) {
    cluster.ApplyAndPublish(
        engine::MakeSyntheticEpoch(n, /*churn=*/false, e, rng));
  }
  // The standby process dies and restarts from its mirrored state (what
  // a checkpoint-restored `shard_node_cli --standby` does).
  StandbyCoordinator restarted(cluster.standby->state());
  EXPECT_EQ(restarted.version(), 2u);
  EXPECT_EQ(restarted.log().log_start(), 2u);
  EXPECT_EQ(restarted.log().published_version(), 2u);
  // The restored fold doubles as its bootstrap image.
  EXPECT_EQ(restarted.log().retained_version(), 2u);
  cluster.standby_transport->set_node(&restarted);

  // Mirroring resumes mid-history...
  cluster.ApplyAndPublish(
      engine::MakeSyntheticEpoch(n, /*churn=*/false, 2, rng));
  EXPECT_EQ(restarted.version(), 3u);
  EXPECT_EQ(restarted.log().published_version(), 3u);

  // ...and the restarted standby is promotable and bit-equal.
  cluster.KillActive();
  std::unique_ptr<Coordinator> promoted =
      restarted.Promote(cluster.node_transports());
  DiversificationEngine::Options engine_options;
  engine_options.remote = promoted.get();
  engine_options.num_workers = 1;
  DiversificationEngine takeover(restarted.state(), engine_options);
  Rng qrng(83);
  ExpectBitEqual(takeover, MakeQuery(n, 7, 4, qrng.NextSeed(), qrng));
  EXPECT_GT(promoted->stats().remote_shards, 0);
}

// A STALE standby (down when the active published its last epoch) must
// not silently interleave histories after promotion: the node that is
// ahead of the mirrored fold is quarantined — queries fall back locally,
// still bit-equal — until a newer bootstrap image replaces its replica
// wholesale, after which it rejoins remote serving.
TEST(StandbyCoordinatorTest, StaleStandbyQuarantinesDivergedNodeUntilReimaged) {
  const int n = 40;
  FailoverCluster cluster = MakeFailoverCluster(n, 1, 71, 0.3);
  Rng rng(72);
  cluster.ApplyAndPublish(
      engine::MakeSyntheticEpoch(n, /*churn=*/false, 0, rng));
  EXPECT_EQ(cluster.standby->version(), 1u);
  // The standby dies off the air; the active publishes one more epoch
  // that only the node sees, then the active dies too.
  cluster.standby_transport->set_down(true);
  cluster.ApplyAndPublish(
      engine::MakeSyntheticEpoch(n, /*churn=*/false, 1, rng));
  EXPECT_EQ(cluster.nodes[0]->version(), 2u);
  EXPECT_EQ(cluster.standby->version(), 1u);
  cluster.KillActive();
  cluster.standby_transport->set_down(false);

  // Promotion probes the node, finds it AHEAD of the fold (2 > 1), and
  // quarantines it.
  std::unique_ptr<Coordinator> promoted =
      cluster.standby->Promote(cluster.node_transports());
  DiversificationEngine::Options engine_options;
  engine_options.remote = promoted.get();
  engine_options.num_workers = 1;
  DiversificationEngine takeover(cluster.standby->state(), engine_options);
  EXPECT_EQ(takeover.corpus().version(), 1u);

  // Queries at version 1 cannot use the diverged node (its "version 1"
  // history matches, but epoch replay to ANY later version would fork);
  // the local fallback keeps answers bit-equal.
  Rng qrng(73);
  ExpectBitEqual(takeover, MakeQuery(n, 7, 4, qrng.NextSeed(), qrng));
  EXPECT_GT(promoted->stats().local_fallbacks, 0);
  EXPECT_EQ(promoted->stats().remote_shards, 0);

  // The new lineage moves on: two fresh epochs (DIFFERENT from the dead
  // active's epoch 2) and a compaction that retains an image at 3 —
  // newer than the diverged node's 2, so the re-image can land.
  for (int e = 0; e < 2; ++e) {
    const std::vector<CorpusUpdate> updates =
        engine::MakeSyntheticEpoch(n, /*churn=*/false, 10 + e, rng);
    promoted->PublishEpoch(takeover.ApplyUpdates(updates), updates);
  }
  promoted->CompactLog(*takeover.corpus().snapshot());
  EXPECT_EQ(promoted->retained_snapshot_version(), 3u);

  // The next query re-images the node wholesale and serves remotely.
  ExpectBitEqual(takeover, MakeQuery(n, 7, 4, qrng.NextSeed(), qrng));
  EXPECT_EQ(cluster.nodes[0]->version(), 3u);
  EXPECT_EQ(cluster.nodes[0]->stats().snapshots_installed, 1);
  const Coordinator::Stats stats = promoted->stats();
  EXPECT_GT(stats.snapshots_sent, 0);
  EXPECT_GT(stats.remote_shards, 0);
  // The replaced replica is the new lineage's fold: version 3 content
  // equals the takeover corpus exactly.
  EXPECT_EQ(snapshot::EncodeState(
                cluster.nodes[0]->replica().snapshot()->State()),
            snapshot::EncodeSnapshot(*takeover.corpus().snapshot()));
}

}  // namespace
}  // namespace replication
}  // namespace diverse
