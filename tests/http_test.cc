// HTTP front-door tests (src/http/ + obs::ObservabilityHandler): the
// parser's total-decoding contract — every byte sequence maps to exactly
// one of {kOk, kIncomplete, kBad}, every prefix of a valid request is
// kIncomplete, malformed and over-cap input is kBad, and fuzz-style
// corruption never crashes — plus the server loop over real loopback
// sockets (200/400/404/405 routing, oversized targets, survival after a
// bad request) and the endpoint handler's routing, formats, and cluster
// relabeling.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdint>
#include <string>
#include <vector>

#include "http/parser.h"
#include "http/server.h"
#include "obs/build_info.h"
#include "obs/http_handler.h"
#include "obs/metric_registry.h"
#include "obs/metrics.h"
#include "obs/trace_buffer.h"

namespace diverse {
namespace http {
namespace {

// ---------------------------------------------------------------------
// Parser: complete requests.

TEST(ParserTest, ParsesAMinimalGet) {
  Request request;
  std::size_t consumed = 0;
  const std::string bytes = "GET / HTTP/1.1\r\nHost: a\r\n\r\n";
  ASSERT_EQ(ParseRequest(bytes, &request, &consumed), ParseStatus::kOk);
  EXPECT_EQ(request.method, "GET");
  EXPECT_EQ(request.target, "/");
  EXPECT_EQ(request.path, "/");
  EXPECT_EQ(request.query, "");
  EXPECT_EQ(request.minor_version, 1);
  EXPECT_EQ(consumed, bytes.size());
}

TEST(ParserTest, SplitsPathAndQueryAtTheFirstQuestionMark) {
  Request request;
  std::size_t consumed = 0;
  ASSERT_EQ(ParseRequest("GET /metrics?x=1&y=2?z HTTP/1.0\r\n\r\n", &request,
                         &consumed),
            ParseStatus::kOk);
  EXPECT_EQ(request.target, "/metrics?x=1&y=2?z");
  EXPECT_EQ(request.path, "/metrics");
  EXPECT_EQ(request.query, "x=1&y=2?z");
  EXPECT_EQ(request.minor_version, 0);
}

TEST(ParserTest, LowercasesHeaderNamesAndTrimsValues) {
  Request request;
  std::size_t consumed = 0;
  ASSERT_EQ(ParseRequest(
                "GET / HTTP/1.1\r\nHoSt:   box:80  \r\nX-Empty:\r\n\r\n",
                &request, &consumed),
            ParseStatus::kOk);
  ASSERT_EQ(request.headers.size(), 2u);
  EXPECT_EQ(request.headers[0].first, "host");
  EXPECT_EQ(request.headers[0].second, "box:80");
  EXPECT_EQ(HeaderValue(request, "host"), "box:80");
  EXPECT_EQ(HeaderValue(request, "x-empty"), "");
  EXPECT_EQ(HeaderValue(request, "absent"), "");
}

TEST(ParserTest, ConsumedStopsAtTheHeaderBlockForPipelinedBytes) {
  Request request;
  std::size_t consumed = 0;
  const std::string first = "GET /a HTTP/1.1\r\n\r\n";
  const std::string bytes = first + "GET /b HTTP/1.1\r\n\r\n";
  ASSERT_EQ(ParseRequest(bytes, &request, &consumed), ParseStatus::kOk);
  EXPECT_EQ(consumed, first.size());
  EXPECT_EQ(request.path, "/a");
}

TEST(ParserTest, NonGetMethodsParseSoTheServerCanAnswer405) {
  Request request;
  std::size_t consumed = 0;
  ASSERT_EQ(ParseRequest("DELETE /x HTTP/1.1\r\n\r\n", &request, &consumed),
            ParseStatus::kOk);
  EXPECT_EQ(request.method, "DELETE");
}

TEST(ParserTest, ContentLengthZeroIsTheOnlyBodyDeclarationAllowed) {
  Request request;
  std::size_t consumed = 0;
  EXPECT_EQ(ParseRequest("GET / HTTP/1.1\r\nContent-Length: 0\r\n\r\n",
                         &request, &consumed),
            ParseStatus::kOk);
  EXPECT_EQ(ParseRequest("GET / HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello",
                         &request, &consumed),
            ParseStatus::kBad);
  EXPECT_EQ(
      ParseRequest("GET / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
                   &request, &consumed),
      ParseStatus::kBad);
}

// ---------------------------------------------------------------------
// Parser: malformed input is kBad, partial input is kIncomplete.

ParseStatus ParseOnly(const std::string& bytes) {
  Request request;
  std::size_t consumed = 0;
  return ParseRequest(bytes, &request, &consumed);
}

TEST(ParserTest, RejectsMalformedRequestLines) {
  EXPECT_EQ(ParseOnly("GET  / HTTP/1.1\r\n\r\n"), ParseStatus::kBad);
  EXPECT_EQ(ParseOnly("GET /\r\n\r\n"), ParseStatus::kBad);
  EXPECT_EQ(ParseOnly("GET / HTTP/2.0\r\n\r\n"), ParseStatus::kBad);
  EXPECT_EQ(ParseOnly("GET / http/1.1\r\n\r\n"), ParseStatus::kBad);
  EXPECT_EQ(ParseOnly("GET / HTTP/1.1 \r\n\r\n"), ParseStatus::kBad);
  EXPECT_EQ(ParseOnly("GET metrics HTTP/1.1\r\n\r\n"), ParseStatus::kBad);
  EXPECT_EQ(ParseOnly("G@T / HTTP/1.1\r\n\r\n"), ParseStatus::kBad);
  EXPECT_EQ(ParseOnly("/ GET HTTP/1.1\r\n\r\n"), ParseStatus::kBad);
  EXPECT_EQ(ParseOnly("\r\nGET / HTTP/1.1\r\n\r\n"), ParseStatus::kBad);
}

TEST(ParserTest, RejectsMalformedHeaders) {
  EXPECT_EQ(ParseOnly("GET / HTTP/1.1\r\nno-colon\r\n\r\n"),
            ParseStatus::kBad);
  EXPECT_EQ(ParseOnly("GET / HTTP/1.1\r\n: empty-name\r\n\r\n"),
            ParseStatus::kBad);
  EXPECT_EQ(ParseOnly("GET / HTTP/1.1\r\nbad name: v\r\n\r\n"),
            ParseStatus::kBad);
  // Bare LF framing never produces a complete request: without a
  // CRLFCRLF terminator the parser keeps reporting kIncomplete until the
  // connection dies at the size cap or read timeout.
  EXPECT_EQ(ParseOnly("GET / HTTP/1.1\nHost: a\n\n"),
            ParseStatus::kIncomplete);
}

TEST(ParserTest, RejectsNulBytesImmediately) {
  std::string bytes = "GET / HTTP/1.1\r\n\r\n";
  bytes[5] = '\0';
  EXPECT_EQ(ParseOnly(bytes), ParseStatus::kBad);
  // Even before the block completes: a NUL never becomes valid later.
  EXPECT_EQ(ParseOnly(std::string("GE\0T", 4)), ParseStatus::kBad);
}

TEST(ParserTest, EnforcesEveryCapAsBadNotPending) {
  EXPECT_EQ(ParseOnly("GET /" + std::string(kMaxTargetBytes, 'a') +
                      " HTTP/1.1\r\n\r\n"),
            ParseStatus::kBad);
  // An over-long request line fails before its terminator ever arrives —
  // a peer cannot buy unbounded buffering by withholding the newline.
  EXPECT_EQ(ParseOnly("GET /" + std::string(kMaxTargetBytes + 128, 'a')),
            ParseStatus::kBad);
  EXPECT_EQ(ParseOnly("GET / HTTP/1.1\r\nh: " +
                      std::string(kMaxHeaderLineBytes, 'v') + "\r\n\r\n"),
            ParseStatus::kBad);
  std::string many = "GET / HTTP/1.1\r\n";
  for (std::size_t i = 0; i <= kMaxHeaderCount; ++i) {
    many += "h" + std::to_string(i) + ": v\r\n";
  }
  EXPECT_EQ(ParseOnly(many + "\r\n"), ParseStatus::kBad);
  EXPECT_EQ(ParseOnly("X" + std::string(kMaxMethodBytes, 'X') +
                      " / HTTP/1.1\r\n\r\n"),
            ParseStatus::kBad);
}

TEST(ParserTest, EveryPrefixOfAValidRequestIsIncompleteNeverOkOrCrash) {
  const std::string requests[] = {
      "GET / HTTP/1.1\r\n\r\n",
      "GET /metrics?debug=1 HTTP/1.0\r\nHost: box:80\r\nAccept: */*\r\n\r\n",
      "HEAD /statusz HTTP/1.1\r\nUser-Agent: probe/1\r\n\r\n",
  };
  for (const std::string& full : requests) {
    for (std::size_t cut = 0; cut < full.size(); ++cut) {
      const ParseStatus status = ParseOnly(full.substr(0, cut));
      EXPECT_EQ(status, ParseStatus::kIncomplete)
          << "prefix of " << cut << " bytes of: " << full;
    }
    EXPECT_EQ(ParseOnly(full), ParseStatus::kOk);
  }
}

TEST(ParserTest, FuzzedCorruptionNeverCrashesAndNeverHangs) {
  // Deterministic xorshift so a failure reproduces; each round corrupts a
  // valid request at a few positions and parses every prefix of the
  // result. The invariant under test is totality: some status comes back
  // for EVERY input, with no aborts and no reads past the buffer
  // (ASan/UBSan builds check the latter).
  const std::string seed_request =
      "GET /metrics?x=1 HTTP/1.1\r\nHost: box\r\nAccept: text/plain\r\n\r\n";
  std::uint64_t state = 0x243f6a8885a308d3ull;
  auto next = [&state] {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };
  for (int round = 0; round < 400; ++round) {
    std::string bytes = seed_request;
    const int edits = 1 + static_cast<int>(next() % 4);
    for (int e = 0; e < edits; ++e) {
      const std::size_t pos = next() % bytes.size();
      bytes[pos] = static_cast<char>(next() % 256);
    }
    const std::size_t step = 1 + next() % 7;
    for (std::size_t cut = 0; cut <= bytes.size(); cut += step) {
      const ParseStatus status = ParseOnly(bytes.substr(0, cut));
      EXPECT_TRUE(status == ParseStatus::kOk ||
                  status == ParseStatus::kIncomplete ||
                  status == ParseStatus::kBad);
    }
    ParseOnly(bytes);
  }
}

// ---------------------------------------------------------------------
// Server: real loopback sockets.

class EchoPathHandler : public Handler {
 public:
  Response Handle(const Request& request) override {
    Response response;
    if (request.path == "/boom") {
      response.status = 404;
      response.body = "nothing here\n";
    } else {
      response.body = "path=" + request.path + " query=" + request.query +
                      "\n";
    }
    return response;
  }
};

// Sends `bytes` to the server and returns everything read until the
// server closes the connection (every response is Connection: close).
std::string RoundTrip(int port, const std::string& bytes) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t sent = ::send(fd, bytes.data() + off, bytes.size() - off, 0);
    if (sent <= 0) break;
    off += static_cast<std::size_t>(sent);
  }
  std::string reply;
  char chunk[2048];
  for (;;) {
    const ssize_t got = ::recv(fd, chunk, sizeof(chunk), 0);
    if (got <= 0) break;
    reply.append(chunk, static_cast<std::size_t>(got));
  }
  ::close(fd);
  return reply;
}

TEST(HttpServerTest, ServesRoutesErrorsAndSurvivesAbuse) {
  EchoPathHandler handler;
  HttpServer server(&handler, /*port=*/0);
  server.Start();
  const int port = server.port();
  ASSERT_GT(port, 0);

  const std::string ok = RoundTrip(port, "GET /a?b=c HTTP/1.1\r\n\r\n");
  EXPECT_NE(ok.find("HTTP/1.1 200 OK\r\n"), std::string::npos);
  EXPECT_NE(ok.find("Connection: close\r\n"), std::string::npos);
  EXPECT_NE(ok.find("path=/a query=b=c"), std::string::npos);

  EXPECT_NE(RoundTrip(port, "GET /boom HTTP/1.1\r\n\r\n")
                .find("HTTP/1.1 404 Not Found"),
            std::string::npos);

  const std::string post =
      RoundTrip(port, "POST /a HTTP/1.1\r\nContent-Length: 0\r\n\r\n");
  EXPECT_NE(post.find("HTTP/1.1 405 Method Not Allowed"), std::string::npos);
  EXPECT_NE(post.find("Allow: GET\r\n"), std::string::npos);

  EXPECT_NE(RoundTrip(port, "total garbage\r\n\r\n").find("HTTP/1.1 400"),
            std::string::npos);

  // Oversized target: rejected at the request-line cap, well before the
  // 8 KB accumulation limit, and without waiting for CRLF.
  const std::string huge =
      "GET /" + std::string(4096, 'a') + " HTTP/1.1\r\n\r\n";
  EXPECT_NE(RoundTrip(port, huge).find("HTTP/1.1 400"), std::string::npos);

  // NUL injection is also a straight 400.
  std::string nul = "GET / HTTP/1.1\r\n\r\n";
  nul[5] = '\0';
  EXPECT_NE(RoundTrip(port, nul).find("HTTP/1.1 400"), std::string::npos);

  // The server is still healthy after every probe above.
  EXPECT_NE(RoundTrip(port, "GET /after HTTP/1.1\r\n\r\n")
                .find("path=/after"),
            std::string::npos);
  server.Stop();
}

TEST(HttpServerTest, StopWithIdleConnectionDoesNotHang) {
  EchoPathHandler handler;
  HttpServer server(&handler, /*port=*/0);
  server.Start();
  // Open a connection and send nothing; Stop() must shut it down rather
  // than wait out the read timeout.
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(server.port()));
  ASSERT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                      sizeof(addr)),
            0);
  server.Stop();
  ::close(fd);
}

}  // namespace
}  // namespace http

// ---------------------------------------------------------------------
// ObservabilityHandler: routing, formats, cluster relabeling.

namespace obs {
namespace {

http::Request Get(const std::string& path) {
  http::Request request;
  request.method = "GET";
  request.target = path;
  request.path = path;
  return request;
}

TEST(ObservabilityHandlerTest, ServesMetricsHealthzStatuszAndIndex) {
  MetricRegistry registry;
  std::vector<MetricRegistry::Registration> registrations;
  RegisterStandardMetrics(&registry, &registrations);
  Counter queries;
  queries.Inc(3);
  auto r = registry.RegisterCounter("diverse_engine_queries_total", &queries);

  ObservabilityHandler::Options options;
  options.registry = &registry;
  options.role = "engine";
  options.corpus_version = [] { return std::uint64_t{7}; };
  options.acked_table = [] {
    return std::vector<std::uint64_t>{5, 7};
  };
  ObservabilityHandler handler(std::move(options));

  const http::Response metrics = handler.Handle(Get("/metrics"));
  EXPECT_EQ(metrics.status, 200);
  EXPECT_NE(metrics.content_type.find("version=0.0.4"), std::string::npos);
  EXPECT_NE(metrics.body.find("diverse_engine_queries_total 3"),
            std::string::npos);
  EXPECT_NE(metrics.body.find("diverse_build_info{"), std::string::npos);

  const http::Response healthz = handler.Handle(Get("/healthz"));
  EXPECT_EQ(healthz.status, 200);
  EXPECT_EQ(healthz.body.rfind("ok\n", 0), 0u);
  EXPECT_NE(healthz.body.find("role=engine\n"), std::string::npos);
  EXPECT_NE(healthz.body.find("corpus_version=7\n"), std::string::npos);
  EXPECT_NE(healthz.body.find("uptime_seconds="), std::string::npos);

  const http::Response statusz = handler.Handle(Get("/statusz"));
  EXPECT_EQ(statusz.status, 200);
  EXPECT_EQ(statusz.content_type, "application/json");
  EXPECT_NE(statusz.body.find("\"build\":{\"version\":\""),
            std::string::npos);
  EXPECT_NE(statusz.body.find("\"role\":\"engine\""), std::string::npos);
  EXPECT_NE(statusz.body.find("\"corpus_version\":7"), std::string::npos);
  EXPECT_NE(statusz.body.find("\"acked\":[5,7]"), std::string::npos);
  EXPECT_NE(statusz.body.find("\"metrics\":{\"counters\":"),
            std::string::npos);

  EXPECT_NE(handler.Handle(Get("/")).body.find("/tracez"),
            std::string::npos);
  EXPECT_EQ(handler.Handle(Get("/nope")).status, 404);
}

TEST(ObservabilityHandlerTest, TracezIs404WithoutABufferAndRendersWithOne) {
  MetricRegistry registry;
  ObservabilityHandler::Options bare;
  bare.registry = &registry;
  ObservabilityHandler no_traces(std::move(bare));
  EXPECT_EQ(no_traces.Handle(Get("/tracez")).status, 404);

  TraceBuffer buffer(8, 2);
  QueryTrace trace;
  const auto now = QueryTrace::Clock::now();
  trace.AddSpan("kernel", now, now);
  buffer.Add(trace, "greedy/single p=3", 0.001, 4);
  ObservabilityHandler::Options options;
  options.registry = &registry;
  options.traces = &buffer;
  ObservabilityHandler handler(std::move(options));
  const http::Response tracez = handler.Handle(Get("/tracez"));
  EXPECT_EQ(tracez.status, 200);
  EXPECT_NE(tracez.body.find("greedy/single p=3"), std::string::npos);
  EXPECT_NE(tracez.body.find("kernel"), std::string::npos);
  EXPECT_NE(tracez.body.find("slow-query log"), std::string::npos);
}

TEST(ObservabilityHandlerTest, ReadyzDistinguishesLiveFromReady) {
  MetricRegistry registry;
  bool ready = false;
  ObservabilityHandler::Options options;
  options.registry = &registry;
  options.role = "shard_node";
  options.corpus_version = [] { return std::uint64_t{0}; };
  options.ready = [&ready] { return ready; };
  ObservabilityHandler handler(std::move(options));

  // Bootstrapping: live (200 on /healthz) but not ready (503 on /readyz).
  EXPECT_EQ(handler.Handle(Get("/healthz")).status, 200);
  const http::Response not_ready = handler.Handle(Get("/readyz"));
  EXPECT_EQ(not_ready.status, 503);
  EXPECT_EQ(not_ready.body.rfind("not ready\n", 0), 0u);
  EXPECT_NE(not_ready.body.find("role=shard_node\n"), std::string::npos);

  // First snapshot installed: readiness flips without a restart.
  ready = true;
  const http::Response now_ready = handler.Handle(Get("/readyz"));
  EXPECT_EQ(now_ready.status, 200);
  EXPECT_EQ(now_ready.body.rfind("ready\n", 0), 0u);

  // No probe wired = no not-yet-ready phase: always 200.
  MetricRegistry plain_registry;
  ObservabilityHandler::Options plain;
  plain.registry = &plain_registry;
  ObservabilityHandler always_ready(std::move(plain));
  EXPECT_EQ(always_ready.Handle(Get("/readyz")).status, 200);
  EXPECT_NE(always_ready.Handle(Get("/")).body.find("/readyz"),
            std::string::npos);
}

TEST(ObservabilityHandlerTest, TracezKindReplicationSelectsItsOwnBuffer) {
  MetricRegistry registry;
  TraceBuffer query_traces(8, 2);
  {
    QueryTrace trace;
    const auto now = QueryTrace::Clock::now();
    trace.AddSpan("kernel", now, now);
    query_traces.Add(trace, "greedy/single p=3", 0.001, 4);
  }
  TraceBuffer replication_traces(8, 2);
  {
    QueryTrace trace;
    const auto now = QueryTrace::Clock::now();
    trace.AddSpan("publish.node0", now, now);
    replication_traces.Add(trace, "publish v5", 0.002, 5);
  }

  ObservabilityHandler::Options options;
  options.registry = &registry;
  options.traces = &query_traces;
  options.replication_traces = &replication_traces;
  ObservabilityHandler handler(std::move(options));

  http::Request request = Get("/tracez");
  request.target = "/tracez?kind=replication";
  request.query = "kind=replication";
  const http::Response replication = handler.Handle(request);
  EXPECT_EQ(replication.status, 200);
  EXPECT_NE(replication.body.find("publish v5"), std::string::npos);
  EXPECT_EQ(replication.body.find("greedy/single"), std::string::npos);

  // The default kind still serves the query buffer.
  const http::Response queries = handler.Handle(Get("/tracez"));
  EXPECT_EQ(queries.status, 200);
  EXPECT_NE(queries.body.find("greedy/single p=3"), std::string::npos);
  EXPECT_EQ(queries.body.find("publish v5"), std::string::npos);

  // A process with no replication buffer answers an honest 404 for the
  // replication kind while still serving the query kind.
  MetricRegistry lone_registry;
  ObservabilityHandler::Options lone;
  lone.registry = &lone_registry;
  lone.traces = &query_traces;
  ObservabilityHandler lone_handler(std::move(lone));
  EXPECT_EQ(lone_handler.Handle(request).status, 404);
  EXPECT_EQ(lone_handler.Handle(Get("/tracez")).status, 200);
}

TEST(ObservabilityHandlerTest, ClusterPageRelabelsAndReportsDeadNodes) {
  MetricRegistry registry;
  Counter queries;
  queries.Inc(2);
  auto r = registry.RegisterCounter("diverse_engine_queries_total", &queries);

  ObservabilityHandler::Options options;
  options.registry = &registry;
  options.cluster.push_back(
      {"127.0.0.1:7411", [](std::string* out) {
         *out = "# TYPE diverse_node_queries_total counter\n"
                "diverse_node_queries_total 9\n";
         return true;
       }});
  options.cluster.push_back(
      {"127.0.0.1:7412", [](std::string*) { return false; }});
  ObservabilityHandler handler(std::move(options));

  const http::Response page = handler.Handle(Get("/metrics/cluster"));
  EXPECT_EQ(page.status, 200);
  EXPECT_NE(
      page.body.find("diverse_engine_queries_total{node=\"self\"} 2"),
      std::string::npos);
  EXPECT_NE(page.body.find(
                "diverse_node_queries_total{node=\"127.0.0.1:7411\"} 9"),
            std::string::npos);
  EXPECT_NE(page.body.find("# node 127.0.0.1:7412 unreachable"),
            std::string::npos);

  // No sources configured: the endpoint does not exist.
  MetricRegistry lone_registry;
  ObservabilityHandler::Options lone;
  lone.registry = &lone_registry;
  ObservabilityHandler lone_handler(std::move(lone));
  EXPECT_EQ(lone_handler.Handle(Get("/metrics/cluster")).status, 404);
}

}  // namespace
}  // namespace obs
}  // namespace diverse
