#include <gtest/gtest.h>

#include <vector>

#include "core/diversification_problem.h"
#include "core/solution_state.h"
#include "data/synthetic.h"
#include "metric/metric_utils.h"
#include "submodular/coverage_function.h"
#include "submodular/modular_function.h"
#include "util/random.h"

namespace diverse {
namespace {

struct Instance {
  Dataset data;
  ModularFunction weights;
  DiversificationProblem problem;

  Instance(int n, double lambda, std::uint64_t seed, Rng&& rng)
      : data(MakeUniformSynthetic(n, rng)),
        weights(data.weights),
        problem(&data.metric, &weights, lambda) {
    (void)seed;
  }
  Instance(int n, double lambda, std::uint64_t seed)
      : Instance(n, lambda, seed, Rng(seed)) {}
};

TEST(DiversificationProblemTest, ObjectiveCombinesQualityAndDispersion) {
  DenseMetric metric(3);
  metric.SetDistance(0, 1, 1.0);
  metric.SetDistance(0, 2, 2.0);
  metric.SetDistance(1, 2, 4.0);
  const ModularFunction f({10.0, 20.0, 30.0});
  const DiversificationProblem problem(&metric, &f, 0.5);
  const std::vector<int> s = {0, 2};
  EXPECT_DOUBLE_EQ(problem.Objective(s), 40.0 + 0.5 * 2.0);
  EXPECT_DOUBLE_EQ(problem.DispersionTerm(s), 1.0);
  EXPECT_DOUBLE_EQ(problem.Objective(std::vector<int>{}), 0.0);
}

TEST(DiversificationProblemTest, LambdaZeroIsPureQuality) {
  Instance inst(10, 0.0, 1);
  const std::vector<int> s = {1, 4, 7};
  EXPECT_DOUBLE_EQ(inst.problem.Objective(s), inst.weights.Value(s));
}

TEST(DiversificationProblemTest, RejectsMismatchedSizes) {
  DenseMetric metric(3);
  const ModularFunction f({1.0, 2.0});
  EXPECT_DEATH(DiversificationProblem(&metric, &f, 0.2), "differ");
}

TEST(SolutionStateTest, EmptyState) {
  Instance inst(5, 0.2, 2);
  SolutionState state(&inst.problem);
  EXPECT_EQ(state.size(), 0);
  EXPECT_DOUBLE_EQ(state.objective(), 0.0);
  EXPECT_DOUBLE_EQ(state.quality_value(), 0.0);
  EXPECT_DOUBLE_EQ(state.dispersion_sum(), 0.0);
}

TEST(SolutionStateTest, AddTracksObjective) {
  Instance inst(8, 0.2, 3);
  SolutionState state(&inst.problem);
  state.Add(2);
  state.Add(5);
  state.Add(7);
  const std::vector<int> s = {2, 5, 7};
  EXPECT_NEAR(state.objective(), inst.problem.Objective(s), 1e-9);
  EXPECT_TRUE(state.Contains(5));
  EXPECT_FALSE(state.Contains(0));
  EXPECT_EQ(state.SortedMembers(), s);
}

TEST(SolutionStateTest, DistanceToSetMatchesSumTo) {
  Instance inst(10, 0.3, 4);
  SolutionState state(&inst.problem);
  state.Add(1);
  state.Add(3);
  state.Add(8);
  const std::vector<int> s = {1, 3, 8};
  for (int v = 0; v < 10; ++v) {
    if (state.Contains(v)) continue;
    EXPECT_NEAR(state.DistanceToSet(v), SumTo(inst.data.metric, v, s), 1e-9);
  }
  // For members: distance to the rest of the set.
  EXPECT_NEAR(state.DistanceToSet(1),
              inst.data.metric.Distance(1, 3) + inst.data.metric.Distance(1, 8),
              1e-9);
}

TEST(SolutionStateTest, AddGainMatchesObjectiveDelta) {
  Instance inst(10, 0.2, 5);
  SolutionState state(&inst.problem);
  state.Add(0);
  state.Add(4);
  for (int v = 0; v < 10; ++v) {
    if (state.Contains(v)) continue;
    const double predicted = state.AddGain(v);
    SolutionState copy = state;
    copy.Add(v);
    EXPECT_NEAR(copy.objective() - state.objective(), predicted, 1e-9);
  }
}

TEST(SolutionStateTest, PrimeGainHalvesQualityPart) {
  Instance inst(10, 0.2, 6);
  SolutionState state(&inst.problem);
  state.Add(3);
  for (int v = 0; v < 10; ++v) {
    if (state.Contains(v)) continue;
    const double full = state.AddGain(v);
    const double prime = state.PrimeGain(v);
    EXPECT_NEAR(full - prime, 0.5 * inst.weights.weight(v), 1e-9);
  }
}

TEST(SolutionStateTest, RemoveInvertsAdd) {
  Instance inst(12, 0.25, 7);
  SolutionState state(&inst.problem);
  for (int v : {2, 5, 9, 11}) state.Add(v);
  const double before = state.objective();
  state.Add(6);
  state.Remove(6);
  EXPECT_NEAR(state.objective(), before, 1e-9);
  EXPECT_EQ(state.size(), 4);
}

TEST(SolutionStateTest, RemoveGainMatchesObjectiveDelta) {
  Instance inst(10, 0.4, 8);
  SolutionState state(&inst.problem);
  for (int v : {1, 4, 6, 8}) state.Add(v);
  for (int v : {1, 4, 6, 8}) {
    const double predicted = state.RemoveGain(v);
    SolutionState copy = state;
    copy.Remove(v);
    EXPECT_NEAR(copy.objective() - state.objective(), predicted, 1e-9);
  }
}

TEST(SolutionStateTest, SwapGainMatchesObjectiveDelta) {
  Instance inst(12, 0.2, 9);
  SolutionState state(&inst.problem);
  for (int v : {0, 3, 7}) state.Add(v);
  for (int out : {0, 3, 7}) {
    for (int in = 0; in < 12; ++in) {
      if (state.Contains(in)) continue;
      const double predicted = state.SwapGain(out, in);
      SolutionState copy = state;
      copy.Swap(out, in);
      EXPECT_NEAR(copy.objective() - state.objective(), predicted, 1e-9)
          << "swap " << out << " -> " << in;
    }
  }
}

TEST(SolutionStateTest, SwapGainDoesNotMutate) {
  Instance inst(8, 0.2, 10);
  SolutionState state(&inst.problem);
  state.Add(1);
  state.Add(2);
  const double before = state.objective();
  (void)state.SwapGain(1, 5);
  (void)state.RemoveGain(2);
  EXPECT_DOUBLE_EQ(state.objective(), before);
  EXPECT_EQ(state.size(), 2);
  EXPECT_NEAR(state.quality_value(),
              inst.weights.weight(1) + inst.weights.weight(2), 1e-12);
}

TEST(SolutionStateTest, AssignReplacesSet) {
  Instance inst(10, 0.2, 11);
  SolutionState state(&inst.problem);
  state.Add(0);
  state.Assign({3, 6, 9});
  EXPECT_EQ(state.SortedMembers(), (std::vector<int>{3, 6, 9}));
  EXPECT_NEAR(state.objective(),
              inst.problem.Objective(std::vector<int>{3, 6, 9}), 1e-9);
}

TEST(SolutionStateTest, RebuildAfterExternalMetricChange) {
  Instance inst(6, 0.5, 12);
  SolutionState state(&inst.problem);
  state.Add(0);
  state.Add(1);
  inst.data.metric.SetDistance(0, 1, 1.9);
  state.Rebuild();
  EXPECT_NEAR(state.objective(),
              inst.weights.weight(0) + inst.weights.weight(1) + 0.5 * 1.9,
              1e-9);
}

TEST(SolutionStateTest, RebuildAfterExternalWeightChange) {
  Instance inst(6, 0.5, 13);
  SolutionState state(&inst.problem);
  state.Add(2);
  inst.weights.SetWeight(2, 0.75);
  state.Rebuild();
  EXPECT_NEAR(state.quality_value(), 0.75, 1e-12);
}

TEST(SolutionStateTest, CopyIsIndependent) {
  Instance inst(8, 0.2, 14);
  SolutionState state(&inst.problem);
  state.Add(1);
  SolutionState copy = state;
  copy.Add(2);
  EXPECT_EQ(state.size(), 1);
  EXPECT_EQ(copy.size(), 2);
}

TEST(SolutionStateTest, WorksWithSubmodularQuality) {
  Rng rng(15);
  Dataset data = MakeUniformSynthetic(8, rng);
  const CoverageFunction coverage({{0, 1}, {1, 2}, {2}, {0, 3}, {3, 4},
                                   {4}, {5}, {0, 5}},
                                  {1.0, 1.5, 2.0, 2.5, 3.0, 3.5});
  const DiversificationProblem problem(&data.metric, &coverage, 0.3);
  SolutionState state(&problem);
  for (int v : {0, 3, 5}) state.Add(v);
  EXPECT_NEAR(state.objective(),
              problem.Objective(std::vector<int>{0, 3, 5}), 1e-9);
  // Swap gains must match for non-modular f too.
  const double predicted = state.SwapGain(3, 6);
  SolutionState copy = state;
  copy.Swap(3, 6);
  EXPECT_NEAR(copy.objective() - state.objective(), predicted, 1e-9);
}

// Randomized consistency sweep: a long random mutation trace keeps the
// incremental objective equal to the from-scratch evaluation.
class SolutionStateFuzz : public ::testing::TestWithParam<int> {};

TEST_P(SolutionStateFuzz, IncrementalMatchesFromScratch) {
  Rng rng(GetParam());
  Dataset data = MakeUniformSynthetic(15, rng);
  const ModularFunction weights(data.weights);
  const DiversificationProblem problem(&data.metric, &weights, 0.2);
  SolutionState state(&problem);
  for (int step = 0; step < 200; ++step) {
    const int v = rng.UniformInt(0, 14);
    if (state.Contains(v)) {
      state.Remove(v);
    } else {
      state.Add(v);
    }
    if (step % 25 == 0) {
      EXPECT_NEAR(state.objective(), problem.Objective(state.members()),
                  1e-9);
    }
  }
  EXPECT_NEAR(state.objective(), problem.Objective(state.members()), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SolutionStateFuzz, ::testing::Range(1, 21));

// Same fuzz with a non-modular quality function: exercises the evaluator
// Remove paths (coverage counts) under long mutation traces.
class SubmodularStateFuzz : public ::testing::TestWithParam<int> {};

TEST_P(SubmodularStateFuzz, IncrementalMatchesFromScratch) {
  Rng rng(GetParam() * 101);
  Dataset data = MakeUniformSynthetic(12, rng);
  std::vector<std::vector<int>> covers(12);
  for (auto& cv : covers) {
    cv = rng.SampleWithoutReplacement(9, rng.UniformInt(1, 5));
  }
  std::vector<double> topic_weights(9);
  for (double& w : topic_weights) w = rng.Uniform(0.2, 1.5);
  const CoverageFunction coverage(covers, topic_weights);
  const DiversificationProblem problem(&data.metric, &coverage, 0.3);
  SolutionState state(&problem);
  for (int step = 0; step < 150; ++step) {
    const int v = rng.UniformInt(0, 11);
    if (state.Contains(v)) {
      state.Remove(v);
    } else {
      state.Add(v);
    }
    if (step % 30 == 0) {
      EXPECT_NEAR(state.objective(), problem.Objective(state.members()),
                  1e-9);
      EXPECT_NEAR(state.quality_value(), coverage.Value(state.members()),
                  1e-9);
    }
  }
  EXPECT_NEAR(state.objective(), problem.Objective(state.members()), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SubmodularStateFuzz, ::testing::Range(1, 11));

}  // namespace
}  // namespace diverse
