// Observability layer tests (src/obs/ + the rpc scrape path): histogram
// bucket math and percentiles, registry registration lifetimes, both
// exporters, QueryTrace span recording under concurrency — and the
// end-to-end contract: a traced remote-sharded query yields a timeline
// covering queue wait, snapshot acquire, per-shard RPCs, and the merge,
// while answering bit-equal to the identical untraced query; a ShardNode
// is scrapeable over its transport in both formats and rejects corrupt
// stats frames.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <future>
#include <limits>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "data/synthetic.h"
#include "engine/engine.h"
#include "engine/workload.h"
#include "obs/export.h"
#include "obs/metric_registry.h"
#include "obs/metrics.h"
#include "obs/query_trace.h"
#include "rpc/coordinator.h"
#include "rpc/shard_node.h"
#include "rpc/stats.h"
#include "rpc/transport.h"
#include "rpc/wire.h"
#include "util/random.h"

namespace diverse {
namespace obs {
namespace {

TEST(CounterTest, IncrementAndRead) {
  Counter counter;
  EXPECT_EQ(counter.value(), 0);
  counter.Inc();
  counter.Inc(41);
  EXPECT_EQ(counter.value(), 42);
}

TEST(HistogramTest, BucketBoundariesAreInclusiveUpper) {
  Histogram hist;
  hist.Record(1e-6);        // exactly bound[0] -> bucket 0
  hist.Record(0.0);         // below every bound -> bucket 0
  hist.Record(-1.0);        // negative (never from a monotonic clock)
  hist.Record(2e-6);        // exactly bound[1] -> bucket 1
  hist.Record(2.0000001e-6);  // just past bound[1] -> bucket 2
  const Histogram::Snapshot snapshot = hist.TakeSnapshot();
  EXPECT_EQ(snapshot.counts[0], 3);
  EXPECT_EQ(snapshot.counts[1], 1);
  EXPECT_EQ(snapshot.counts[2], 1);
  EXPECT_EQ(snapshot.total, 5);
}

TEST(HistogramTest, OverflowBucketCatchesEverythingPastTheLastBound) {
  Histogram hist;
  hist.Record(100.0);  // > 1e-6 * 2^26 ~= 67.1 s
  hist.Record(std::numeric_limits<double>::infinity());
  hist.Record(std::numeric_limits<double>::quiet_NaN());
  const Histogram::Snapshot snapshot = hist.TakeSnapshot();
  EXPECT_EQ(snapshot.counts[Histogram::kNumBuckets - 1], 3);
  EXPECT_EQ(snapshot.total, 3);
}

TEST(HistogramTest, EveryFiniteBoundContainsItself) {
  // Recording exactly bound[i] must land in bucket i for every finite
  // bound — the ilogb fast path must not round across the edge.
  for (int i = 0; i < Histogram::kNumBuckets - 1; ++i) {
    Histogram hist;
    hist.Record(Histogram::UpperBound(i));
    EXPECT_EQ(hist.TakeSnapshot().counts[i], 1) << "bound " << i;
  }
}

TEST(HistogramTest, UpperBoundsAreExponential) {
  EXPECT_DOUBLE_EQ(Histogram::UpperBound(0), 1e-6);
  EXPECT_DOUBLE_EQ(Histogram::UpperBound(1), 2e-6);
  EXPECT_DOUBLE_EQ(Histogram::UpperBound(10), 1024e-6);
  EXPECT_TRUE(std::isinf(Histogram::UpperBound(Histogram::kNumBuckets - 1)));
}

TEST(HistogramTest, SumAndCountAccumulate) {
  Histogram hist;
  hist.Record(0.001);
  hist.Record(0.002);
  EXPECT_EQ(hist.count(), 2);
  EXPECT_DOUBLE_EQ(hist.sum(), 0.003);
}

TEST(HistogramTest, PercentileOfEmptyIsNaN) {
  Histogram hist;
  EXPECT_TRUE(std::isnan(hist.Percentile(0.5)));
}

TEST(HistogramTest, PercentileInterpolatesWithinTheBucket) {
  Histogram hist;
  for (int i = 0; i < 100; ++i) hist.Record(0.0005);  // (256 µs, 512 µs]
  const double p50 = hist.Percentile(0.5);
  EXPECT_GT(p50, 256e-6);
  EXPECT_LE(p50, 512e-6);
  // Monotone in q.
  EXPECT_LE(hist.Percentile(0.1), hist.Percentile(0.9));
  EXPECT_LE(hist.Percentile(0.0), hist.Percentile(1.0));
}

TEST(HistogramTest, PercentileAcrossBucketsOrdersByMagnitude) {
  Histogram hist;
  for (int i = 0; i < 90; ++i) hist.Record(10e-6);
  for (int i = 0; i < 10; ++i) hist.Record(0.01);
  EXPECT_LE(hist.Percentile(0.5), 16e-6);   // inside the 10 µs bucket
  EXPECT_GT(hist.Percentile(0.99), 0.004);  // inside the 10 ms bucket
}

TEST(HistogramTest, PercentileOfOverflowOnlyIsTheLastFiniteBound) {
  Histogram hist;
  hist.Record(1000.0);
  EXPECT_DOUBLE_EQ(hist.Percentile(0.5),
                   Histogram::UpperBound(Histogram::kNumBuckets - 2));
}

TEST(MetricRegistryTest, SnapshotIsSortedAndTyped) {
  MetricRegistry registry;
  Counter counter;
  counter.Inc(7);
  Histogram hist;
  hist.Record(0.001);
  auto r1 = registry.RegisterCounter("zzz_total", &counter);
  auto r2 = registry.RegisterGauge("aaa_gauge", [] { return 2.5; });
  auto r3 = registry.RegisterHistogram("mmm_seconds", &hist);
  const std::vector<MetricRegistry::Sample> samples = registry.Snapshot();
  ASSERT_EQ(samples.size(), 3u);
  EXPECT_EQ(samples[0].name, "aaa_gauge");
  EXPECT_EQ(samples[0].kind, MetricRegistry::Kind::kGauge);
  EXPECT_DOUBLE_EQ(samples[0].gauge_value, 2.5);
  EXPECT_EQ(samples[1].name, "mmm_seconds");
  EXPECT_EQ(samples[1].kind, MetricRegistry::Kind::kHistogram);
  EXPECT_EQ(samples[1].histogram.total, 1);
  EXPECT_EQ(samples[2].name, "zzz_total");
  EXPECT_EQ(samples[2].kind, MetricRegistry::Kind::kCounter);
  EXPECT_EQ(samples[2].counter_value, 7);
}

TEST(MetricRegistryTest, RegistrationUnregistersOnDestruction) {
  MetricRegistry registry;
  Counter counter;
  {
    MetricRegistry::Registration registration =
        registry.RegisterCounter("scoped_total", &counter);
    EXPECT_EQ(registry.size(), 1u);
  }
  EXPECT_EQ(registry.size(), 0u);
}

TEST(MetricRegistryTest, RegistrationIsMovable) {
  MetricRegistry registry;
  Counter counter;
  MetricRegistry::Registration outer;
  {
    MetricRegistry::Registration inner =
        registry.RegisterCounter("moved_total", &counter);
    outer = std::move(inner);
  }  // inner (moved-from) destructs: must NOT unregister
  EXPECT_EQ(registry.size(), 1u);
  outer = MetricRegistry::Registration();  // now it unregisters
  EXPECT_EQ(registry.size(), 0u);
}

TEST(ExportTest, PrometheusTextHasCumulativeBucketsAndTypes) {
  MetricRegistry registry;
  Counter counter;
  counter.Inc(3);
  Histogram hist;
  hist.Record(0.5e-6);  // bucket 0
  hist.Record(3e-6);    // bucket 2
  auto r1 = registry.RegisterCounter("demo_total", &counter);
  auto r2 = registry.RegisterGauge("demo_gauge", [] { return 1.5; });
  auto r3 = registry.RegisterHistogram("demo_seconds", &hist);
  const std::string text = RenderPrometheusText(registry);
  EXPECT_NE(text.find("# TYPE demo_total counter"), std::string::npos);
  EXPECT_NE(text.find("demo_total 3"), std::string::npos);
  EXPECT_NE(text.find("# TYPE demo_gauge gauge"), std::string::npos);
  EXPECT_NE(text.find("demo_gauge 1.5"), std::string::npos);
  EXPECT_NE(text.find("# TYPE demo_seconds histogram"), std::string::npos);
  // Cumulative: bucket 0 holds 1, every later bucket (and +Inf) holds 2.
  EXPECT_NE(text.find("demo_seconds_bucket{le=\"1e-06\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("demo_seconds_bucket{le=\"4e-06\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("demo_seconds_bucket{le=\"+Inf\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("demo_seconds_count 2"), std::string::npos);
  EXPECT_NE(text.find("demo_seconds_sum"), std::string::npos);
}

TEST(ExportTest, JsonHasAllSectionsAndEscapes) {
  MetricRegistry registry;
  Counter counter;
  counter.Inc(3);
  Histogram hist;
  hist.Record(3e-6);
  auto r1 = registry.RegisterCounter("a_total", &counter);
  auto r2 = registry.RegisterGauge(
      "bad\"name", [] { return std::numeric_limits<double>::quiet_NaN(); });
  auto r3 = registry.RegisterHistogram("h_seconds", &hist);
  const std::string json = RenderJson(registry);
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"a_total\":3"), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\\\"name\":null"), std::string::npos);  // escaped, NaN
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"count\":1"), std::string::npos);
}

TEST(QueryTraceTest, IdsAreUniqueAndNonZero) {
  QueryTrace a;
  QueryTrace b;
  EXPECT_NE(a.id(), 0u);
  EXPECT_NE(b.id(), 0u);
  EXPECT_NE(a.id(), b.id());
}

TEST(QueryTraceTest, ClampsBackwardSpansToZeroLength) {
  QueryTrace trace;
  const auto now = QueryTrace::Clock::now();
  trace.AddSpan("weird", now, now - std::chrono::milliseconds(5));
  ASSERT_EQ(trace.spans().size(), 1u);
  EXPECT_EQ(trace.spans()[0].duration_seconds, 0.0);
}

TEST(QueryTraceTest, ConcurrentAddSpanIsSafe) {
  QueryTrace trace;
  constexpr int kThreads = 4;
  constexpr int kSpansPerThread = 64;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&trace, t] {
      for (int i = 0; i < kSpansPerThread; ++i) {
        ScopedSpan span(&trace, "t" + std::to_string(t));
      }
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(trace.spans().size(),
            static_cast<std::size_t>(kThreads * kSpansPerThread));
}

TEST(QueryTraceTest, NullTraceScopedSpanIsANoOp) {
  ScopedSpan span(nullptr, "ignored");  // must not crash or allocate a trace
}

TEST(QueryTraceTest, RenderListsEverySpan) {
  QueryTrace trace;
  { ScopedSpan span(&trace, "alpha"); }
  { ScopedSpan span(&trace, "beta"); }
  const std::string rendered = trace.Render();
  EXPECT_NE(rendered.find("trace "), std::string::npos);
  EXPECT_NE(rendered.find("alpha"), std::string::npos);
  EXPECT_NE(rendered.find("beta"), std::string::npos);
}

// ---------------------------------------------------------------------
// End-to-end: engine + coordinator + ShardNode replicas over
// InProcessTransport.

struct Cluster {
  std::vector<std::unique_ptr<rpc::ShardNode>> nodes;
  std::vector<std::unique_ptr<rpc::InProcessTransport>> transports;
  std::unique_ptr<rpc::Coordinator> coordinator;
  std::unique_ptr<engine::DiversificationEngine> engine;
};

Cluster MakeCluster(int n, int num_nodes, MetricRegistry* registry,
                    std::uint64_t seed, int workers = 1) {
  Rng rng(seed);
  const Dataset data = MakeUniformSynthetic(n, rng);
  Cluster cluster;
  std::vector<rpc::Transport*> raw;
  for (int i = 0; i < num_nodes; ++i) {
    Dataset replica = data;
    cluster.nodes.push_back(std::make_unique<rpc::ShardNode>(
        replica.weights, std::move(replica.metric), 0.2));
    cluster.transports.push_back(std::make_unique<rpc::InProcessTransport>(
        cluster.nodes.back().get()));
    raw.push_back(cluster.transports.back().get());
  }
  cluster.coordinator = std::make_unique<rpc::Coordinator>(raw);
  if (registry != nullptr) cluster.coordinator->RegisterMetrics(registry);
  engine::DiversificationEngine::Options options;
  options.num_workers = workers;
  options.remote = cluster.coordinator.get();
  options.registry = registry;
  Dataset mine = data;
  cluster.engine = std::make_unique<engine::DiversificationEngine>(
      mine.weights, std::move(mine.metric), 0.2, options);
  return cluster;
}

engine::Query MakeRemoteQuery(int universe, int p, int num_shards,
                              Rng& rng) {
  engine::SyntheticQueryConfig config;
  config.p = p;
  config.universe = universe;
  config.sharded = true;
  config.remote = true;
  config.num_shards = num_shards;
  return engine::MakeSyntheticQuery(config, rng);
}

TEST(ObsIntegrationTest, TracedRemoteQueryCoversTheServingPipeline) {
  MetricRegistry registry;
  Cluster cluster = MakeCluster(/*n=*/120, /*num_nodes=*/2, &registry,
                                /*seed=*/31);
  Rng rng(32);
  engine::Query query = MakeRemoteQuery(120, 6, 4, rng);
  QueryTrace trace;
  query.trace = &trace;
  // Submit through the worker pool so the queue-wait span is recorded.
  const engine::QueryResult result =
      cluster.engine->Submit(query).get();
  ASSERT_TRUE(result.ok);

  std::set<std::string> names;
  bool has_shard_rpc = false;
  for (const QueryTrace::Span& span : trace.spans()) {
    names.insert(span.name);
    if (span.name.rfind("rpc.shard", 0) == 0) has_shard_rpc = true;
  }
  EXPECT_TRUE(names.count("queue"));
  EXPECT_TRUE(names.count("snapshot"));
  EXPECT_TRUE(names.count("merge"));
  EXPECT_TRUE(has_shard_rpc);
  EXPECT_GE(names.size(), 4u) << trace.Render();

  // The trace id crossed the wire: some node counted a traced kernel.
  long long traced = 0;
  for (const auto& node : cluster.nodes) {
    traced += node->stats().traced_queries;
  }
  EXPECT_GT(traced, 0);
}

TEST(ObsIntegrationTest, TracedAndUntracedAnswersAreBitEqual) {
  MetricRegistry registry;
  Cluster traced_cluster = MakeCluster(/*n=*/100, /*num_nodes=*/2, &registry,
                                       /*seed=*/41);
  Cluster plain_cluster = MakeCluster(/*n=*/100, /*num_nodes=*/2, nullptr,
                                      /*seed=*/41);
  Rng rng(42);
  for (int i = 0; i < 5; ++i) {
    engine::Query query = MakeRemoteQuery(100, 5, 4, rng);
    QueryTrace trace;
    engine::Query traced_query = query;
    traced_query.trace = &trace;
    const engine::QueryResult with_trace =
        traced_cluster.engine->RunSync(traced_query);
    const engine::QueryResult without_trace =
        plain_cluster.engine->RunSync(query);
    ASSERT_TRUE(with_trace.ok);
    EXPECT_EQ(with_trace.elements, without_trace.elements);
    EXPECT_EQ(with_trace.objective, without_trace.objective);
    EXPECT_EQ(with_trace.corpus_version, without_trace.corpus_version);
    EXPECT_FALSE(trace.spans().empty());
  }
}

TEST(ObsIntegrationTest, EngineMetricsLandInTheRegistry) {
  MetricRegistry registry;
  Cluster cluster = MakeCluster(/*n=*/80, /*num_nodes=*/1, &registry,
                                /*seed=*/51);
  Rng rng(52);
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(cluster.engine->RunSync(MakeRemoteQuery(80, 4, 2, rng)).ok);
  }
  const std::string text = RenderPrometheusText(registry);
  EXPECT_NE(text.find("diverse_engine_queries_total 3"), std::string::npos);
  EXPECT_NE(text.find("diverse_engine_corpus_version 0"), std::string::npos);
  EXPECT_NE(text.find("diverse_router_remote_shards_total"),
            std::string::npos);
  EXPECT_NE(text.find("diverse_log_published_version"), std::string::npos);
  EXPECT_NE(text.find("diverse_engine_query_latency_seconds_bucket"),
            std::string::npos);
}

TEST(ObsIntegrationTest, ShardNodeIsScrapeableInBothFormats) {
  MetricRegistry registry;
  Cluster cluster = MakeCluster(/*n=*/80, /*num_nodes=*/1, &registry,
                                /*seed=*/61);
  Rng rng(62);
  ASSERT_TRUE(cluster.engine->RunSync(MakeRemoteQuery(80, 4, 2, rng)).ok);

  std::string prometheus;
  ASSERT_TRUE(rpc::ScrapeStats(cluster.transports[0].get(),
                               rpc::StatsFormat::kPrometheus, &prometheus));
  EXPECT_NE(prometheus.find("diverse_node_queries_total"),
            std::string::npos);
  EXPECT_NE(prometheus.find("diverse_node_corpus_version"),
            std::string::npos);
  EXPECT_NE(prometheus.find("diverse_node_kernel_latency_seconds_bucket"),
            std::string::npos);

  std::string json;
  ASSERT_TRUE(rpc::ScrapeStats(cluster.transports[0].get(),
                               rpc::StatsFormat::kJson, &json));
  EXPECT_NE(json.find("\"diverse_node_queries_total\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
}

TEST(ObsIntegrationTest, CorruptStatsRequestIsRejectedNotServed) {
  Rng rng(71);
  Dataset data = MakeUniformSynthetic(40, rng);
  rpc::ShardNode node(data.weights, std::move(data.metric), 0.2);
  rpc::StatsRequest request;
  request.format = rpc::StatsFormat::kPrometheus;
  std::vector<std::uint8_t> payload = rpc::Encode(request);
  payload[3] = 9;  // format byte out of the StatsFormat range
  const std::vector<std::uint8_t> reply = node.Handle(payload);
  rpc::StatsResponse response;
  EXPECT_FALSE(rpc::Decode(reply, &response));
  EXPECT_EQ(node.stats().rejected, 1);
}

}  // namespace
}  // namespace obs
}  // namespace diverse
