// Observability layer tests (src/obs/ + the rpc scrape path): histogram
// bucket math and percentiles, registry registration lifetimes, both
// exporters, QueryTrace span recording under concurrency — and the
// end-to-end contract: a traced remote-sharded query yields a timeline
// covering queue wait, snapshot acquire, per-shard RPCs, and the merge,
// while answering bit-equal to the identical untraced query; a ShardNode
// is scrapeable over its transport in both formats and rejects corrupt
// stats frames.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <future>
#include <limits>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "data/synthetic.h"
#include "engine/engine.h"
#include "engine/workload.h"
#include "obs/build_info.h"
#include "obs/export.h"
#include "obs/metric_registry.h"
#include "obs/metrics.h"
#include "obs/query_trace.h"
#include "obs/trace_buffer.h"
#include "rpc/coordinator.h"
#include "rpc/shard_node.h"
#include "rpc/stats.h"
#include "rpc/transport.h"
#include "rpc/wire.h"
#include "util/random.h"

namespace diverse {
namespace obs {
namespace {

TEST(CounterTest, IncrementAndRead) {
  Counter counter;
  EXPECT_EQ(counter.value(), 0);
  counter.Inc();
  counter.Inc(41);
  EXPECT_EQ(counter.value(), 42);
}

TEST(HistogramTest, BucketBoundariesAreInclusiveUpper) {
  Histogram hist;
  hist.Record(1e-6);        // exactly bound[0] -> bucket 0
  hist.Record(0.0);         // below every bound -> bucket 0
  hist.Record(-1.0);        // negative (never from a monotonic clock)
  hist.Record(2e-6);        // exactly bound[1] -> bucket 1
  hist.Record(2.0000001e-6);  // just past bound[1] -> bucket 2
  const Histogram::Snapshot snapshot = hist.TakeSnapshot();
  EXPECT_EQ(snapshot.counts[0], 3);
  EXPECT_EQ(snapshot.counts[1], 1);
  EXPECT_EQ(snapshot.counts[2], 1);
  EXPECT_EQ(snapshot.total, 5);
}

TEST(HistogramTest, OverflowBucketCatchesEverythingPastTheLastBound) {
  Histogram hist;
  hist.Record(100.0);  // > 1e-6 * 2^26 ~= 67.1 s
  hist.Record(std::numeric_limits<double>::infinity());
  hist.Record(std::numeric_limits<double>::quiet_NaN());
  const Histogram::Snapshot snapshot = hist.TakeSnapshot();
  EXPECT_EQ(snapshot.counts[Histogram::kNumBuckets - 1], 3);
  EXPECT_EQ(snapshot.total, 3);
}

TEST(HistogramTest, EveryFiniteBoundContainsItself) {
  // Recording exactly bound[i] must land in bucket i for every finite
  // bound — the ilogb fast path must not round across the edge.
  for (int i = 0; i < Histogram::kNumBuckets - 1; ++i) {
    Histogram hist;
    hist.Record(Histogram::UpperBound(i));
    EXPECT_EQ(hist.TakeSnapshot().counts[i], 1) << "bound " << i;
  }
}

TEST(HistogramTest, UpperBoundsAreExponential) {
  EXPECT_DOUBLE_EQ(Histogram::UpperBound(0), 1e-6);
  EXPECT_DOUBLE_EQ(Histogram::UpperBound(1), 2e-6);
  EXPECT_DOUBLE_EQ(Histogram::UpperBound(10), 1024e-6);
  EXPECT_TRUE(std::isinf(Histogram::UpperBound(Histogram::kNumBuckets - 1)));
}

TEST(HistogramTest, SumAndCountAccumulate) {
  Histogram hist;
  hist.Record(0.001);
  hist.Record(0.002);
  EXPECT_EQ(hist.count(), 2);
  EXPECT_DOUBLE_EQ(hist.sum(), 0.003);
}

TEST(HistogramTest, PercentileOfEmptyIsNaN) {
  Histogram hist;
  EXPECT_TRUE(std::isnan(hist.Percentile(0.5)));
}

TEST(HistogramTest, PercentileInterpolatesWithinTheBucket) {
  Histogram hist;
  for (int i = 0; i < 100; ++i) hist.Record(0.0005);  // (256 µs, 512 µs]
  const double p50 = hist.Percentile(0.5);
  EXPECT_GT(p50, 256e-6);
  EXPECT_LE(p50, 512e-6);
  // Monotone in q.
  EXPECT_LE(hist.Percentile(0.1), hist.Percentile(0.9));
  EXPECT_LE(hist.Percentile(0.0), hist.Percentile(1.0));
}

TEST(HistogramTest, PercentileAcrossBucketsOrdersByMagnitude) {
  Histogram hist;
  for (int i = 0; i < 90; ++i) hist.Record(10e-6);
  for (int i = 0; i < 10; ++i) hist.Record(0.01);
  EXPECT_LE(hist.Percentile(0.5), 16e-6);   // inside the 10 µs bucket
  EXPECT_GT(hist.Percentile(0.99), 0.004);  // inside the 10 ms bucket
}

TEST(HistogramTest, PercentileOfOverflowOnlyIsTheLastFiniteBound) {
  Histogram hist;
  hist.Record(1000.0);
  EXPECT_DOUBLE_EQ(hist.Percentile(0.5),
                   Histogram::UpperBound(Histogram::kNumBuckets - 2));
}

TEST(MetricRegistryTest, SnapshotIsSortedAndTyped) {
  MetricRegistry registry;
  Counter counter;
  counter.Inc(7);
  Histogram hist;
  hist.Record(0.001);
  auto r1 = registry.RegisterCounter("zzz_total", &counter);
  auto r2 = registry.RegisterGauge("aaa_gauge", [] { return 2.5; });
  auto r3 = registry.RegisterHistogram("mmm_seconds", &hist);
  const std::vector<MetricRegistry::Sample> samples = registry.Snapshot();
  ASSERT_EQ(samples.size(), 3u);
  EXPECT_EQ(samples[0].name, "aaa_gauge");
  EXPECT_EQ(samples[0].kind, MetricRegistry::Kind::kGauge);
  EXPECT_DOUBLE_EQ(samples[0].gauge_value, 2.5);
  EXPECT_EQ(samples[1].name, "mmm_seconds");
  EXPECT_EQ(samples[1].kind, MetricRegistry::Kind::kHistogram);
  EXPECT_EQ(samples[1].histogram.total, 1);
  EXPECT_EQ(samples[2].name, "zzz_total");
  EXPECT_EQ(samples[2].kind, MetricRegistry::Kind::kCounter);
  EXPECT_EQ(samples[2].counter_value, 7);
}

TEST(MetricRegistryTest, RegistrationUnregistersOnDestruction) {
  MetricRegistry registry;
  Counter counter;
  {
    MetricRegistry::Registration registration =
        registry.RegisterCounter("scoped_total", &counter);
    EXPECT_EQ(registry.size(), 1u);
  }
  EXPECT_EQ(registry.size(), 0u);
}

TEST(MetricRegistryTest, RegistrationIsMovable) {
  MetricRegistry registry;
  Counter counter;
  MetricRegistry::Registration outer;
  {
    MetricRegistry::Registration inner =
        registry.RegisterCounter("moved_total", &counter);
    outer = std::move(inner);
  }  // inner (moved-from) destructs: must NOT unregister
  EXPECT_EQ(registry.size(), 1u);
  outer = MetricRegistry::Registration();  // now it unregisters
  EXPECT_EQ(registry.size(), 0u);
}

TEST(ExportTest, PrometheusTextHasCumulativeBucketsAndTypes) {
  MetricRegistry registry;
  Counter counter;
  counter.Inc(3);
  Histogram hist;
  hist.Record(0.5e-6);  // bucket 0
  hist.Record(3e-6);    // bucket 2
  auto r1 = registry.RegisterCounter("demo_total", &counter);
  auto r2 = registry.RegisterGauge("demo_gauge", [] { return 1.5; });
  auto r3 = registry.RegisterHistogram("demo_seconds", &hist);
  const std::string text = RenderPrometheusText(registry);
  EXPECT_NE(text.find("# TYPE demo_total counter"), std::string::npos);
  EXPECT_NE(text.find("demo_total 3"), std::string::npos);
  EXPECT_NE(text.find("# TYPE demo_gauge gauge"), std::string::npos);
  EXPECT_NE(text.find("demo_gauge 1.5"), std::string::npos);
  EXPECT_NE(text.find("# TYPE demo_seconds histogram"), std::string::npos);
  // Cumulative: bucket 0 holds 1, every later bucket (and +Inf) holds 2.
  EXPECT_NE(text.find("demo_seconds_bucket{le=\"1e-06\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("demo_seconds_bucket{le=\"4e-06\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("demo_seconds_bucket{le=\"+Inf\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("demo_seconds_count 2"), std::string::npos);
  EXPECT_NE(text.find("demo_seconds_sum"), std::string::npos);
}

TEST(ExportTest, JsonHasAllSectionsAndEscapes) {
  MetricRegistry registry;
  Counter counter;
  counter.Inc(3);
  Histogram hist;
  hist.Record(3e-6);
  auto r1 = registry.RegisterCounter("a_total", &counter);
  // Labeled names are the only registrable names containing quotes, so
  // they are what exercises the JSON key escaping.
  auto r2 = registry.RegisterGauge("nan_gauge{tag=\"v\"}", [] {
    return std::numeric_limits<double>::quiet_NaN();
  });
  auto r3 = registry.RegisterHistogram("h_seconds", &hist);
  const std::string json = RenderJson(registry);
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"a_total\":3"), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"nan_gauge{tag=\\\"v\\\"}\":null"),
            std::string::npos);  // escaped key, NaN -> null
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"count\":1"), std::string::npos);
}

TEST(MetricNameTest, AcceptsPlainAndLabeledNames) {
  EXPECT_TRUE(IsValidMetricName("diverse_engine_queries_total"));
  EXPECT_TRUE(IsValidMetricName("a:b_c9"));
  EXPECT_TRUE(IsValidMetricName("x_info{version=\"1.2\",mode=\"Release\"}"));
  EXPECT_TRUE(IsValidMetricName("x_info{v=\"quote \\\" slash \\\\ n \\n\"}"));
  EXPECT_TRUE(IsValidMetricName("x{k=\"\"}"));  // empty value is fine
}

TEST(MetricNameTest, RejectsMalformedNames) {
  EXPECT_FALSE(IsValidMetricName(""));
  EXPECT_FALSE(IsValidMetricName("9leading_digit"));
  EXPECT_FALSE(IsValidMetricName("has space"));
  EXPECT_FALSE(IsValidMetricName("bad\"name"));
  EXPECT_FALSE(IsValidMetricName("caf\xc3\xa9_total"));  // UTF-8 in name
  EXPECT_FALSE(IsValidMetricName("x{}"));                // empty label block
  EXPECT_FALSE(IsValidMetricName("x{k=\"v\""));          // unterminated
  EXPECT_FALSE(IsValidMetricName("x{k=\"v\"}y"));        // trailing junk
  EXPECT_FALSE(IsValidMetricName("x{k=v}"));             // unquoted value
  EXPECT_FALSE(IsValidMetricName("x{9k=\"v\"}"));        // bad label key
  EXPECT_FALSE(IsValidMetricName("x{k=\"bad \\x\"}"));   // bad escape
  EXPECT_FALSE(IsValidMetricName("x{k=\"caf\xc3\xa9\"}"));  // UTF-8 value
}

TEST(MetricRegistryDeathTest, RegistrationRejectsInvalidNames) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  MetricRegistry registry;
  Counter counter;
  EXPECT_DEATH(registry.RegisterCounter("caf\xc3\xa9_total", &counter),
               "invalid metric name");
  EXPECT_DEATH(registry.RegisterGauge("bad\"name", [] { return 0.0; }),
               "invalid metric name");
}

TEST(ExportTest, TypeLineCarriesBaseNameForLabeledMetrics) {
  MetricRegistry registry;
  Counter counter;
  counter.Inc(4);
  auto r = registry.RegisterCounter("jobs_total{queue=\"fast\"}", &counter);
  const std::string text = RenderPrometheusText(registry);
  // The family TYPE line must not carry the label block; the sample
  // line must.
  EXPECT_NE(text.find("# TYPE jobs_total counter\n"), std::string::npos);
  EXPECT_EQ(text.find("# TYPE jobs_total{"), std::string::npos);
  EXPECT_NE(text.find("jobs_total{queue=\"fast\"} 4\n"), std::string::npos);
}

TEST(ExportTest, LabeledHistogramMergesLeIntoTheLabelBlock) {
  MetricRegistry registry;
  Histogram hist;
  hist.Record(0.5e-6);
  auto r = registry.RegisterHistogram("lat_seconds{shard=\"0\"}", &hist);
  const std::string text = RenderPrometheusText(registry);
  EXPECT_NE(text.find("# TYPE lat_seconds histogram\n"), std::string::npos);
  EXPECT_NE(text.find("lat_seconds_bucket{shard=\"0\",le=\"1e-06\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("lat_seconds_sum{shard=\"0\"} "), std::string::npos);
  EXPECT_NE(text.find("lat_seconds_count{shard=\"0\"} 1"), std::string::npos);
}

TEST(ExportTest, EmptyHistogramRendersZeroedSeries) {
  MetricRegistry registry;
  Histogram hist;  // never recorded into
  auto r = registry.RegisterHistogram("idle_seconds", &hist);
  const std::string text = RenderPrometheusText(registry);
  EXPECT_NE(text.find("idle_seconds_bucket{le=\"1e-06\"} 0"),
            std::string::npos);
  EXPECT_NE(text.find("idle_seconds_bucket{le=\"+Inf\"} 0"),
            std::string::npos);
  EXPECT_NE(text.find("idle_seconds_sum 0"), std::string::npos);
  EXPECT_NE(text.find("idle_seconds_count 0"), std::string::npos);
}

TEST(ExportTest, PrometheusPageGoldenShape) {
  // Exact-output golden for a small registry: pins line ordering (sorted
  // by name), TYPE-then-sample layout, and label rendering, so an
  // accidental format drift fails loudly instead of surviving substring
  // checks.
  MetricRegistry registry;
  Counter plain;
  plain.Inc(2);
  Counter labeled;
  labeled.Inc(5);
  auto r1 = registry.RegisterCounter("aa_total", &plain);
  auto r2 = registry.RegisterGauge("bb_ratio", [] { return 0.5; });
  auto r3 = registry.RegisterCounter("cc_total{shard=\"0\"}", &labeled);
  EXPECT_EQ(RenderPrometheusText(registry),
            "# TYPE aa_total counter\n"
            "aa_total 2\n"
            "# TYPE bb_ratio gauge\n"
            "bb_ratio 0.5\n"
            "# TYPE cc_total counter\n"
            "cc_total{shard=\"0\"} 5\n");
}

TEST(BuildInfoTest, EscapeLabelValueEscapesTheExpositionSet) {
  EXPECT_EQ(EscapeLabelValue("plain"), "plain");
  EXPECT_EQ(EscapeLabelValue("a\\b\"c\nd"), "a\\\\b\\\"c\\nd");
}

TEST(BuildInfoTest, StandardMetricsRenderInBothExporters) {
  MetricRegistry registry;
  std::vector<MetricRegistry::Registration> registrations;
  RegisterStandardMetrics(&registry, &registrations);
  const std::string text = RenderPrometheusText(registry);
  EXPECT_NE(text.find("# TYPE diverse_build_info gauge"), std::string::npos);
  EXPECT_NE(text.find("diverse_build_info{version=\""), std::string::npos);
  EXPECT_NE(text.find(",compiler=\""), std::string::npos);
  EXPECT_NE(text.find(",mode=\""), std::string::npos);
  EXPECT_NE(text.find("diverse_process_start_time_seconds"),
            std::string::npos);
  EXPECT_GT(ProcessStartTimeSeconds(), 0.0);
  const std::string json = RenderJson(registry);
  EXPECT_NE(json.find("diverse_build_info{version="), std::string::npos);
}

TEST(RelabelTest, InjectsLabelAndDedupesTypeLinesAcrossNodes) {
  const std::string page =
      "# TYPE q_total counter\n"
      "q_total 3\n"
      "# TYPE lat_bucket histogram\n"
      "lat_bucket{le=\"+Inf\"} 2\n";
  std::set<std::string> seen;
  const std::string first = RelabelPrometheusText(page, "node", "n0", &seen);
  EXPECT_NE(first.find("# TYPE q_total counter\n"), std::string::npos);
  EXPECT_NE(first.find("q_total{node=\"n0\"} 3"), std::string::npos);
  EXPECT_NE(first.find("lat_bucket{le=\"+Inf\",node=\"n0\"} 2"),
            std::string::npos);
  const std::string second = RelabelPrometheusText(page, "node", "n1", &seen);
  // TYPE lines already emitted for these families: only samples repeat.
  EXPECT_EQ(second.find("# TYPE"), std::string::npos);
  EXPECT_NE(second.find("q_total{node=\"n1\"} 3"), std::string::npos);
}

TEST(RelabelTest, QuotedBracesInLabelValuesDoNotConfuseInjection) {
  std::set<std::string> seen;
  const std::string out = RelabelPrometheusText(
      "weird{k=\"a}b\"} 1\n", "node", "n0", &seen);
  EXPECT_NE(out.find("weird{k=\"a}b\",node=\"n0\"} 1"), std::string::npos);
}

TEST(TraceSamplerTest, RateOneSamplesEverything) {
  TraceSampler sampler(1);
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(sampler.Sample());
}

TEST(TraceSamplerTest, RateNSamplesRoughlyOneInN) {
  TraceSampler sampler(64);
  int sampled = 0;
  for (int i = 0; i < 64000; ++i) sampled += sampler.Sample() ? 1 : 0;
  // ~1000 expected; SplitMix64 spreads decisions, so a wide band is
  // deterministic-safe (the sequence is fixed per process).
  EXPECT_GT(sampled, 500);
  EXPECT_LT(sampled, 1500);
}

TEST(TraceBufferTest, RingEvictsOldestAndSlowLogPinsSlowest) {
  TraceBuffer buffer(/*capacity=*/4, /*slow_capacity=*/2);
  for (int i = 0; i < 10; ++i) {
    QueryTrace trace;
    // Latencies 0.01..0.10; the slowest two are the LAST adds, which the
    // ring also retains — and an early slow outlier must survive churn.
    buffer.Add(trace, "q" + std::to_string(i), 0.01 * (i + 1), i);
  }
  {
    QueryTrace trace;
    buffer.Add(trace, "outlier", 9.9, 99);
  }
  for (int i = 0; i < 8; ++i) {
    QueryTrace trace;
    buffer.Add(trace, "fast", 0.001, 100 + i);
  }
  const auto recent = buffer.Recent();
  ASSERT_EQ(recent.size(), 4u);
  EXPECT_EQ(recent[0].label, "fast");  // newest first
  EXPECT_EQ(buffer.added(), 19);
  const auto slowest = buffer.Slowest();
  ASSERT_EQ(slowest.size(), 2u);
  EXPECT_EQ(slowest[0].label, "outlier");  // pinned despite ring churn
  EXPECT_DOUBLE_EQ(slowest[0].latency_seconds, 9.9);
  EXPECT_EQ(slowest[1].label, "q9");
  const std::string page = buffer.RenderTracez();
  EXPECT_NE(page.find("slow-query log"), std::string::npos);
  EXPECT_NE(page.find("outlier"), std::string::npos);
}

TEST(TraceBufferTest, AddCopiesSpansAndRegistersMetrics) {
  MetricRegistry registry;
  std::vector<MetricRegistry::Registration> registrations;
  TraceBuffer buffer(8, 2);
  buffer.RegisterMetrics(&registry, &registrations);
  QueryTrace trace;
  const auto now = QueryTrace::Clock::now();
  trace.AddSpan("kernel", now, now + std::chrono::milliseconds(2));
  buffer.Add(trace, "labeled", 0.002, 7);
  const auto recent = buffer.Recent();
  ASSERT_EQ(recent.size(), 1u);
  EXPECT_EQ(recent[0].corpus_version, 7u);
  ASSERT_EQ(recent[0].spans.size(), 1u);
  EXPECT_EQ(recent[0].spans[0].name, "kernel");
  const std::string text = RenderPrometheusText(registry);
  EXPECT_NE(text.find("diverse_traces_sampled_total 1"), std::string::npos);
  EXPECT_NE(text.find("diverse_traces_retained 1"), std::string::npos);
}

TEST(QueryTraceTest, IdsAreUniqueAndNonZero) {
  QueryTrace a;
  QueryTrace b;
  EXPECT_NE(a.id(), 0u);
  EXPECT_NE(b.id(), 0u);
  EXPECT_NE(a.id(), b.id());
}

TEST(QueryTraceTest, ClampsBackwardSpansToZeroLength) {
  QueryTrace trace;
  const auto now = QueryTrace::Clock::now();
  trace.AddSpan("weird", now, now - std::chrono::milliseconds(5));
  ASSERT_EQ(trace.spans().size(), 1u);
  EXPECT_EQ(trace.spans()[0].duration_seconds, 0.0);
}

TEST(QueryTraceTest, ConcurrentAddSpanIsSafe) {
  QueryTrace trace;
  constexpr int kThreads = 4;
  constexpr int kSpansPerThread = 64;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&trace, t] {
      for (int i = 0; i < kSpansPerThread; ++i) {
        ScopedSpan span(&trace, "t" + std::to_string(t));
      }
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(trace.spans().size(),
            static_cast<std::size_t>(kThreads * kSpansPerThread));
}

TEST(QueryTraceTest, NullTraceScopedSpanIsANoOp) {
  ScopedSpan span(nullptr, "ignored");  // must not crash or allocate a trace
}

TEST(QueryTraceTest, RenderListsEverySpan) {
  QueryTrace trace;
  { ScopedSpan span(&trace, "alpha"); }
  { ScopedSpan span(&trace, "beta"); }
  const std::string rendered = trace.Render();
  EXPECT_NE(rendered.find("trace "), std::string::npos);
  EXPECT_NE(rendered.find("alpha"), std::string::npos);
  EXPECT_NE(rendered.find("beta"), std::string::npos);
}

// ---------------------------------------------------------------------
// End-to-end: engine + coordinator + ShardNode replicas over
// InProcessTransport.

struct Cluster {
  std::vector<std::unique_ptr<rpc::ShardNode>> nodes;
  std::vector<std::unique_ptr<rpc::InProcessTransport>> transports;
  std::unique_ptr<rpc::Coordinator> coordinator;
  std::unique_ptr<engine::DiversificationEngine> engine;
};

Cluster MakeCluster(int n, int num_nodes, MetricRegistry* registry,
                    std::uint64_t seed, int workers = 1) {
  Rng rng(seed);
  const Dataset data = MakeUniformSynthetic(n, rng);
  Cluster cluster;
  std::vector<rpc::Transport*> raw;
  for (int i = 0; i < num_nodes; ++i) {
    Dataset replica = data;
    cluster.nodes.push_back(std::make_unique<rpc::ShardNode>(
        replica.weights, std::move(replica.metric), 0.2));
    cluster.transports.push_back(std::make_unique<rpc::InProcessTransport>(
        cluster.nodes.back().get()));
    raw.push_back(cluster.transports.back().get());
  }
  cluster.coordinator = std::make_unique<rpc::Coordinator>(raw);
  if (registry != nullptr) cluster.coordinator->RegisterMetrics(registry);
  engine::DiversificationEngine::Options options;
  options.num_workers = workers;
  options.remote = cluster.coordinator.get();
  options.registry = registry;
  Dataset mine = data;
  cluster.engine = std::make_unique<engine::DiversificationEngine>(
      mine.weights, std::move(mine.metric), 0.2, options);
  return cluster;
}

engine::Query MakeRemoteQuery(int universe, int p, int num_shards,
                              Rng& rng) {
  engine::SyntheticQueryConfig config;
  config.p = p;
  config.universe = universe;
  config.sharded = true;
  config.remote = true;
  config.num_shards = num_shards;
  return engine::MakeSyntheticQuery(config, rng);
}

TEST(ObsIntegrationTest, TracedRemoteQueryCoversTheServingPipeline) {
  MetricRegistry registry;
  Cluster cluster = MakeCluster(/*n=*/120, /*num_nodes=*/2, &registry,
                                /*seed=*/31);
  Rng rng(32);
  engine::Query query = MakeRemoteQuery(120, 6, 4, rng);
  QueryTrace trace;
  query.trace = &trace;
  // Submit through the worker pool so the queue-wait span is recorded.
  const engine::QueryResult result =
      cluster.engine->Submit(query).get();
  ASSERT_TRUE(result.ok);

  std::set<std::string> names;
  bool has_shard_rpc = false;
  for (const QueryTrace::Span& span : trace.spans()) {
    names.insert(span.name);
    if (span.name.rfind("rpc.shard", 0) == 0) has_shard_rpc = true;
  }
  EXPECT_TRUE(names.count("queue"));
  EXPECT_TRUE(names.count("snapshot"));
  EXPECT_TRUE(names.count("merge"));
  EXPECT_TRUE(has_shard_rpc);
  EXPECT_GE(names.size(), 4u) << trace.Render();

  // The trace id crossed the wire: some node counted a traced kernel.
  long long traced = 0;
  for (const auto& node : cluster.nodes) {
    traced += node->stats().traced_queries;
  }
  EXPECT_GT(traced, 0);
}

TEST(ObsIntegrationTest, RemoteNodeSpansNestInsideTheShardRpcSpans) {
  Cluster cluster = MakeCluster(/*n=*/120, /*num_nodes=*/2, nullptr,
                                /*seed=*/91);
  Rng rng(92);
  engine::Query query = MakeRemoteQuery(120, 6, 4, rng);
  QueryTrace trace;
  query.trace = &trace;
  ASSERT_TRUE(cluster.engine->RunSync(query).ok);

  // Parents are the router-side "rpc.shard<s>" spans; children are the
  // node-recorded "rpc.shard<s>/<name> node=<k>" spans aligned into the
  // parent timeline.
  std::vector<QueryTrace::Span> parents;
  std::vector<QueryTrace::Span> children;
  for (const QueryTrace::Span& span : trace.spans()) {
    if (span.name.rfind("rpc.shard", 0) != 0) continue;
    if (span.name.find('/') == std::string::npos) {
      parents.push_back(span);
    } else {
      children.push_back(span);
    }
  }
  ASSERT_FALSE(parents.empty()) << trace.Render();
  ASSERT_FALSE(children.empty()) << trace.Render();

  // Every child carries its node label and fits inside the matching
  // parent interval — the alignment clamps guarantee containment, not
  // just approximation.
  for (const QueryTrace::Span& child : children) {
    EXPECT_NE(child.name.find(" node="), std::string::npos) << child.name;
    const std::string parent_name =
        child.name.substr(0, child.name.find('/'));
    bool nested = false;
    for (const QueryTrace::Span& parent : parents) {
      if (parent.name != parent_name) continue;
      if (child.start_seconds >= parent.start_seconds &&
          child.start_seconds + child.duration_seconds <=
              parent.start_seconds + parent.duration_seconds) {
        nested = true;
        break;
      }
    }
    EXPECT_TRUE(nested) << child.name << "\n" << trace.Render();
  }

  // Each answered shard RPC shows the node-side kernel, and the handle
  // span carries the clock-skew annotation.
  for (const QueryTrace::Span& parent : parents) {
    bool has_kernel = false;
    bool has_skew = false;
    for (const QueryTrace::Span& child : children) {
      if (child.name.rfind(parent.name + "/", 0) != 0) continue;
      if (child.name.rfind(parent.name + "/kernel", 0) == 0) {
        has_kernel = true;
      }
      if (child.name.find(" skew<=") != std::string::npos) has_skew = true;
    }
    EXPECT_TRUE(has_kernel) << parent.name << "\n" << trace.Render();
    EXPECT_TRUE(has_skew) << parent.name << "\n" << trace.Render();
  }
}

TEST(ObsIntegrationTest, ReplicationPublishIsTracedAndLagGaugesRender) {
  Rng rng(95);
  const Dataset data = MakeUniformSynthetic(60, rng);
  std::vector<std::unique_ptr<rpc::ShardNode>> nodes;
  std::vector<std::unique_ptr<rpc::InProcessTransport>> transports;
  std::vector<rpc::Transport*> raw;
  for (int i = 0; i < 2; ++i) {
    Dataset replica = data;
    nodes.push_back(std::make_unique<rpc::ShardNode>(
        replica.weights, std::move(replica.metric), 0.2));
    transports.push_back(
        std::make_unique<rpc::InProcessTransport>(nodes.back().get()));
    raw.push_back(transports.back().get());
  }
  // Registry and trace sink outlive the coordinator that registers into
  // them (registrations unregister on coordinator destruction).
  MetricRegistry registry;
  TraceBuffer replication_traces;
  rpc::Coordinator::Options options;
  options.replication_traces = &replication_traces;
  options.replication_trace_sample_every = 1;
  rpc::Coordinator coordinator(raw, options);
  coordinator.RegisterMetrics(&registry);

  const std::vector<engine::CorpusUpdate> updates = {
      engine::CorpusUpdate::SetWeight(3, 0.75)};
  coordinator.PublishEpoch(1, updates);

  // The publish fan-out was traced: one timeline with a per-target span.
  ASSERT_GE(replication_traces.added(), 1);
  const std::vector<CompletedTrace> recent = replication_traces.Recent();
  ASSERT_FALSE(recent.empty());
  bool saw_publish_span = false;
  for (const CompletedTrace& completed : recent) {
    if (completed.label.rfind("publish", 0) != 0) continue;
    for (const QueryTrace::Span& span : completed.spans) {
      if (span.name == "publish.node0") saw_publish_span = true;
    }
  }
  EXPECT_TRUE(saw_publish_span) << replication_traces.RenderTracez();

  // Both replicas acked version 1, so the per-target lag gauges exist
  // and read zero.
  const std::string text = RenderPrometheusText(registry);
  EXPECT_NE(text.find("diverse_replica_acked_version{target=\"node0\"} 1"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("diverse_replication_lag_epochs{target=\"node0\"} 0"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("diverse_replication_lag_epochs{target=\"node1\"} 0"),
            std::string::npos)
      << text;
}

TEST(ObsIntegrationTest, TracedAndUntracedAnswersAreBitEqual) {
  MetricRegistry registry;
  Cluster traced_cluster = MakeCluster(/*n=*/100, /*num_nodes=*/2, &registry,
                                       /*seed=*/41);
  Cluster plain_cluster = MakeCluster(/*n=*/100, /*num_nodes=*/2, nullptr,
                                      /*seed=*/41);
  Rng rng(42);
  for (int i = 0; i < 5; ++i) {
    engine::Query query = MakeRemoteQuery(100, 5, 4, rng);
    QueryTrace trace;
    engine::Query traced_query = query;
    traced_query.trace = &trace;
    const engine::QueryResult with_trace =
        traced_cluster.engine->RunSync(traced_query);
    const engine::QueryResult without_trace =
        plain_cluster.engine->RunSync(query);
    ASSERT_TRUE(with_trace.ok);
    EXPECT_EQ(with_trace.elements, without_trace.elements);
    EXPECT_EQ(with_trace.objective, without_trace.objective);
    EXPECT_EQ(with_trace.corpus_version, without_trace.corpus_version);
    EXPECT_FALSE(trace.spans().empty());
  }
}

TEST(ObsIntegrationTest, SampledQueriesAreBitEqualAndFeedTheBuffer) {
  // trace_sample_every=1 turns every RunSync into a sampled run; results
  // must still match an engine with no tracing wired at all.
  Rng data_rng(81);
  const Dataset data = MakeUniformSynthetic(90, data_rng);

  TraceBuffer buffer(32, 4);
  engine::DiversificationEngine::Options sampled_options;
  sampled_options.num_workers = 1;
  sampled_options.trace_buffer = &buffer;
  sampled_options.trace_sample_every = 1;
  Dataset sampled_data = data;
  engine::DiversificationEngine sampled_engine(
      sampled_data.weights, std::move(sampled_data.metric), 0.2,
      sampled_options);

  Dataset plain_data = data;
  engine::DiversificationEngine plain_engine(
      plain_data.weights, std::move(plain_data.metric), 0.2);

  Rng rng(82);
  for (int i = 0; i < 6; ++i) {
    engine::SyntheticQueryConfig config;
    config.p = 4;
    config.universe = 90;
    const engine::Query query = engine::MakeSyntheticQuery(config, rng);
    const engine::QueryResult sampled = sampled_engine.RunSync(query);
    const engine::QueryResult plain = plain_engine.RunSync(query);
    ASSERT_TRUE(sampled.ok);
    EXPECT_EQ(sampled.elements, plain.elements);
    EXPECT_EQ(sampled.objective, plain.objective);
    EXPECT_EQ(sampled.corpus_version, plain.corpus_version);
  }

  // RunSync adds to the buffer before returning, so the count is exact.
  EXPECT_EQ(buffer.added(), 6);
  const std::vector<CompletedTrace> recent = buffer.Recent();
  ASSERT_EQ(recent.size(), 6u);
  bool saw_snapshot = false;
  for (const CompletedTrace& trace : recent) {
    EXPECT_EQ(trace.label, "greedy/single p=4");
    for (const QueryTrace::Span& span : trace.spans) {
      if (span.name == "snapshot") saw_snapshot = true;
    }
  }
  EXPECT_TRUE(saw_snapshot);
}

TEST(ObsIntegrationTest, EngineMetricsLandInTheRegistry) {
  MetricRegistry registry;
  Cluster cluster = MakeCluster(/*n=*/80, /*num_nodes=*/1, &registry,
                                /*seed=*/51);
  Rng rng(52);
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(cluster.engine->RunSync(MakeRemoteQuery(80, 4, 2, rng)).ok);
  }
  const std::string text = RenderPrometheusText(registry);
  EXPECT_NE(text.find("diverse_engine_queries_total 3"), std::string::npos);
  EXPECT_NE(text.find("diverse_engine_corpus_version 0"), std::string::npos);
  EXPECT_NE(text.find("diverse_router_remote_shards_total"),
            std::string::npos);
  EXPECT_NE(text.find("diverse_log_published_version"), std::string::npos);
  EXPECT_NE(text.find("diverse_engine_query_latency_seconds_bucket"),
            std::string::npos);
}

TEST(ObsIntegrationTest, ShardNodeIsScrapeableInBothFormats) {
  MetricRegistry registry;
  Cluster cluster = MakeCluster(/*n=*/80, /*num_nodes=*/1, &registry,
                                /*seed=*/61);
  Rng rng(62);
  ASSERT_TRUE(cluster.engine->RunSync(MakeRemoteQuery(80, 4, 2, rng)).ok);

  std::string prometheus;
  ASSERT_TRUE(rpc::ScrapeStats(cluster.transports[0].get(),
                               rpc::StatsFormat::kPrometheus, &prometheus));
  EXPECT_NE(prometheus.find("diverse_node_queries_total"),
            std::string::npos);
  EXPECT_NE(prometheus.find("diverse_node_corpus_version"),
            std::string::npos);
  EXPECT_NE(prometheus.find("diverse_node_kernel_latency_seconds_bucket"),
            std::string::npos);

  std::string json;
  ASSERT_TRUE(rpc::ScrapeStats(cluster.transports[0].get(),
                               rpc::StatsFormat::kJson, &json));
  EXPECT_NE(json.find("\"diverse_node_queries_total\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
}

TEST(ObsIntegrationTest, CorruptStatsRequestIsRejectedNotServed) {
  Rng rng(71);
  Dataset data = MakeUniformSynthetic(40, rng);
  rpc::ShardNode node(data.weights, std::move(data.metric), 0.2);
  rpc::StatsRequest request;
  request.format = rpc::StatsFormat::kPrometheus;
  std::vector<std::uint8_t> payload = rpc::Encode(request);
  payload[3] = 9;  // format byte out of the StatsFormat range
  const std::vector<std::uint8_t> reply = node.Handle(payload);
  rpc::StatsResponse response;
  EXPECT_FALSE(rpc::Decode(reply, &response));
  EXPECT_EQ(node.stats().rejected, 1);
}

}  // namespace
}  // namespace obs
}  // namespace diverse
