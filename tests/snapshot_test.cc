// Tests for the snapshot & durability subsystem (src/snapshot/): codec
// round-trips over randomized corpora (churned, weight-only-epoch, and
// lazy-metric ones), totality of decoding under truncation and
// corruption, Corpus::Restore semantics, and the checkpoint store's
// atomicity/retention/torn-file behavior.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "data/synthetic.h"
#include "engine/corpus.h"
#include "engine/workload.h"
#include "metric/vector_metric.h"
#include "snapshot/checkpoint_store.h"
#include "snapshot/snapshot_codec.h"
#include "util/random.h"

namespace diverse {
namespace snapshot {
namespace {

namespace fs = std::filesystem;
using engine::Corpus;
using engine::CorpusSnapshot;
using engine::CorpusState;
using engine::CorpusUpdate;
using engine::SnapshotPtr;

Corpus MakeCorpus(int n, std::uint64_t seed, double lambda = 0.3) {
  Rng rng(seed);
  Dataset data = MakeUniformSynthetic(n, rng);
  return Corpus(data.weights, std::move(data.metric), lambda);
}

// Every field bit-equal between a live snapshot and a decoded state.
void ExpectStateMatches(const CorpusSnapshot& snapshot,
                        const CorpusState& state) {
  EXPECT_EQ(state.version, snapshot.version());
  EXPECT_EQ(state.lambda, snapshot.lambda());
  const int n = snapshot.universe_size();
  ASSERT_EQ(static_cast<int>(state.weights.size()), n);
  ASSERT_EQ(static_cast<int>(state.alive.size()), n);
  ASSERT_EQ(state.metric.size(), n);
  for (int i = 0; i < n; ++i) {
    EXPECT_EQ(state.weights[i], snapshot.weights().weight(i));
    EXPECT_EQ(state.alive[i] != 0, snapshot.alive(i));
  }
  for (int u = 0; u < n; ++u) {
    for (int v = u + 1; v < n; ++v) {
      EXPECT_EQ(state.metric.Distance(u, v), snapshot.metric().Distance(u, v))
          << "d(" << u << "," << v << ")";
    }
  }
}

TEST(SnapshotCodecTest, EncodedSizeMatchesFormula) {
  for (int n : {0, 1, 2, 7, 40}) {
    Corpus corpus = MakeCorpus(n, 5);
    const std::vector<std::uint8_t> image =
        EncodeSnapshot(*corpus.snapshot());
    EXPECT_EQ(image.size(), EncodedSnapshotBytes(n)) << "n=" << n;
  }
}

TEST(SnapshotCodecTest, RoundTripRandomizedChurnedCorpora) {
  Rng rng(17);
  for (int iter = 0; iter < 8; ++iter) {
    const int n = rng.UniformInt(1, 60);
    Corpus corpus = MakeCorpus(n, rng.NextSeed());
    // A deep epoch history with churn: inserts, erases, weight and
    // distance perturbations, so the snapshot carries retired ids and a
    // grown universe.
    const int epochs = rng.UniformInt(0, 12);
    for (int e = 0; e < epochs; ++e) {
      const int universe = corpus.snapshot()->universe_size();
      corpus.Apply(engine::MakeSyntheticEpoch(universe, /*churn=*/true, e,
                                              rng));
    }
    const SnapshotPtr snapshot = corpus.snapshot();
    const std::vector<std::uint8_t> image = EncodeSnapshot(*snapshot);
    CorpusState state;
    ASSERT_TRUE(DecodeSnapshot(image, &state));
    ExpectStateMatches(*snapshot, state);
    // Deterministic encode: same snapshot, same bytes.
    EXPECT_EQ(EncodeSnapshot(*snapshot), image);
    // EncodeState of the decoded state reproduces the image exactly.
    EXPECT_EQ(EncodeState(state), image);
  }
}

// Weight-only epochs share the predecessor's distance matrix; the image
// must capture that state like any other.
TEST(SnapshotCodecTest, RoundTripWeightOnlyEpochSnapshot) {
  Corpus corpus = MakeCorpus(24, 7);
  corpus.Apply(CorpusUpdate::SetWeight(3, 0.125));
  corpus.Apply(CorpusUpdate::SetWeight(9, 2.5));
  const SnapshotPtr snapshot = corpus.snapshot();
  EXPECT_EQ(snapshot->version(), 2u);
  CorpusState state;
  ASSERT_TRUE(DecodeSnapshot(EncodeSnapshot(*snapshot), &state));
  ExpectStateMatches(*snapshot, state);
}

// Corpora materialized from a lazy base metric (Corpus::FromBaseMetric's
// DistanceCache path) snapshot like dense-native ones.
TEST(SnapshotCodecTest, RoundTripLazyMetricCorpus) {
  Rng rng(23);
  ClusteredConfig config;
  config.n = 30;
  Dataset data = MakeClusteredEuclidean(config, rng);
  Corpus corpus = Corpus::FromBaseMetric(data.metric, data.weights, 0.4);
  const SnapshotPtr snapshot = corpus.snapshot();
  CorpusState state;
  ASSERT_TRUE(DecodeSnapshot(EncodeSnapshot(*snapshot), &state));
  ExpectStateMatches(*snapshot, state);
}

TEST(SnapshotCodecTest, RestoreRebuildsTheExactVersion) {
  Rng rng(29);
  Corpus corpus = MakeCorpus(20, 31);
  for (int e = 0; e < 5; ++e) {
    corpus.Apply(engine::MakeSyntheticEpoch(
        corpus.snapshot()->universe_size(), /*churn=*/true, e, rng));
  }
  const SnapshotPtr original = corpus.snapshot();
  CorpusState state;
  ASSERT_TRUE(DecodeSnapshot(EncodeSnapshot(*original), &state));

  // Restore into a fresh, unrelated corpus.
  Corpus restored = MakeCorpus(3, 99);
  EXPECT_EQ(restored.Restore(std::move(state)), original->version());
  const SnapshotPtr snapshot = restored.snapshot();
  EXPECT_EQ(snapshot->version(), original->version());
  EXPECT_EQ(snapshot->candidates(), original->candidates());
  EXPECT_EQ(snapshot->lambda(), original->lambda());
  // Applying the same epoch to both yields the same next version.
  const std::vector<CorpusUpdate> epoch{CorpusUpdate::SetWeight(0, 0.5)};
  EXPECT_EQ(corpus.Apply(epoch), restored.Apply(epoch));
}

TEST(SnapshotCodecTest, EveryPrefixTruncationRejected) {
  Corpus corpus = MakeCorpus(8, 3);
  const std::vector<std::uint8_t> image = EncodeSnapshot(*corpus.snapshot());
  CorpusState state;
  for (std::size_t len = 0; len < image.size(); ++len) {
    EXPECT_FALSE(DecodeSnapshot(std::span(image.data(), len), &state))
        << "prefix length " << len;
  }
  std::vector<std::uint8_t> trailing = image;
  trailing.push_back(0);
  EXPECT_FALSE(DecodeSnapshot(trailing, &state));
}

TEST(SnapshotCodecTest, EveryByteCorruptionRejected) {
  Corpus corpus = MakeCorpus(6, 9);
  const std::vector<std::uint8_t> image = EncodeSnapshot(*corpus.snapshot());
  CorpusState state;
  ASSERT_TRUE(DecodeSnapshot(image, &state));
  // Single-bit flips anywhere — header, payload, or the CRC trailer —
  // must be caught (n=6 keeps this exhaustive loop cheap).
  for (std::size_t pos = 0; pos < image.size(); ++pos) {
    std::vector<std::uint8_t> corrupt = image;
    corrupt[pos] ^= 0x20;
    EXPECT_FALSE(DecodeSnapshot(corrupt, &state)) << "byte " << pos;
  }
}

// Re-checksummed tampering: the CRC passes, so the semantic validation
// has to reject it (format version skew, non-finite values, bad liveness).
std::vector<std::uint8_t> Rechecksum(std::vector<std::uint8_t> image) {
  const std::uint32_t crc =
      Crc32(std::span(image.data(), image.size() - 4));
  for (int i = 0; i < 4; ++i) {
    image[image.size() - 4 + i] =
        static_cast<std::uint8_t>(crc >> (8 * i));
  }
  return image;
}

TEST(SnapshotCodecTest, RechecksummedTamperingStillRejected) {
  Corpus corpus = MakeCorpus(5, 13);
  const std::vector<std::uint8_t> image = EncodeSnapshot(*corpus.snapshot());
  CorpusState state;

  std::vector<std::uint8_t> bad_magic = image;
  bad_magic[0] ^= 0xff;
  EXPECT_FALSE(DecodeSnapshot(Rechecksum(bad_magic), &state));

  std::vector<std::uint8_t> bad_format = image;
  bad_format[4] = 0xfe;  // format version low byte
  EXPECT_FALSE(DecodeSnapshot(Rechecksum(bad_format), &state));

  std::vector<std::uint8_t> bad_count = image;
  bad_count[22] ^= 0x01;  // universe size: image length no longer matches
  EXPECT_FALSE(DecodeSnapshot(Rechecksum(bad_count), &state));

  // Unknown metric representation byte (follows the u32 universe size).
  std::vector<std::uint8_t> bad_repr = image;
  bad_repr[26] = 2;
  EXPECT_FALSE(DecodeSnapshot(Rechecksum(bad_repr), &state));

  // First weight -> NaN (exponent bits all-ones + mantissa bit).
  std::vector<std::uint8_t> nan_weight = image;
  for (int i = 0; i < 8; ++i) nan_weight[27 + i] = 0xff;
  EXPECT_FALSE(DecodeSnapshot(Rechecksum(nan_weight), &state));

  // First liveness byte out of {0, 1}.
  const int n = corpus.snapshot()->universe_size();
  std::vector<std::uint8_t> bad_alive = image;
  bad_alive[27 + 8 * n] = 2;
  EXPECT_FALSE(DecodeSnapshot(Rechecksum(bad_alive), &state));

  // First distance -> negative (sign bit of the first triangle double).
  std::vector<std::uint8_t> bad_distance = image;
  bad_distance[27 + 9 * n + 7] |= 0x80;
  EXPECT_FALSE(DecodeSnapshot(Rechecksum(bad_distance), &state));

  // NaN lambda.
  std::vector<std::uint8_t> bad_lambda = image;
  for (int i = 0; i < 8; ++i) bad_lambda[14 + i] = 0xff;
  EXPECT_FALSE(DecodeSnapshot(Rechecksum(bad_lambda), &state));
}

// ---- Feature-vector images -------------------------------------------------
//
// Vector-repr corpora snapshot through the same codec with an O(n * d)
// payload: [u32 dim] follows the repr byte, weights start at 31, alive
// at 31 + 8n, and the row-major vector data at 31 + 9n. These tests hold
// the vector branch to the same bar as the dense one: exact size
// formula, bitwise round-trip, every-prefix truncation, every-byte
// corruption, and rechecksummed semantic tampering.

Corpus MakeVectorCorpus(int n, int dim, std::uint64_t seed,
                        double lambda = 0.3) {
  Rng rng(seed);
  std::vector<double> data;
  data.reserve(static_cast<std::size_t>(n) * dim);
  for (int i = 0; i < n * dim; ++i) data.push_back(rng.Uniform(-1.0, 1.0));
  std::vector<double> weights(n);
  for (double& w : weights) w = rng.Uniform(0.0, 1.0);
  return Corpus(std::move(weights),
                VectorMetric::FromRows(dim, std::move(data)), lambda);
}

void ExpectVectorStateMatches(const CorpusSnapshot& snapshot,
                              const CorpusState& state) {
  ASSERT_EQ(state.repr, engine::MetricRepr::kVector);
  EXPECT_EQ(state.version, snapshot.version());
  EXPECT_EQ(state.lambda, snapshot.lambda());
  const int n = snapshot.universe_size();
  ASSERT_EQ(static_cast<int>(state.weights.size()), n);
  ASSERT_EQ(static_cast<int>(state.alive.size()), n);
  for (int i = 0; i < n; ++i) {
    EXPECT_EQ(state.weights[i], snapshot.weights().weight(i));
    EXPECT_EQ(state.alive[i] != 0, snapshot.alive(i));
  }
  ASSERT_EQ(state.vectors.size(), n);
  ASSERT_EQ(state.vectors.dim(), snapshot.vectors().dim());
  // Row-major payload bit-equal => every derived distance bit-equal.
  EXPECT_EQ(state.vectors.data(), snapshot.vectors().data());
}

TEST(SnapshotCodecTest, VectorImageSizeMatchesFormula) {
  for (int n : {1, 2, 7, 40}) {
    for (int dim : {1, 3, 16}) {
      Corpus corpus = MakeVectorCorpus(n, dim, 100 + n + dim);
      const std::vector<std::uint8_t> image =
          EncodeSnapshot(*corpus.snapshot());
      EXPECT_EQ(image.size(), EncodedVectorSnapshotBytes(n, dim))
          << "n=" << n << " dim=" << dim;
    }
  }
}

TEST(SnapshotCodecTest, VectorImageRoundTripWithChurn) {
  Rng rng(103);
  for (int iter = 0; iter < 6; ++iter) {
    const int n = rng.UniformInt(1, 40);
    const int dim = rng.UniformInt(1, 12);
    Corpus corpus = MakeVectorCorpus(n, dim, rng.NextSeed());
    // Vector-repr churn: fresh embeddings in, old ids retired, weights
    // perturbed — the image must carry the grown universe.
    const int epochs = rng.UniformInt(0, 6);
    for (int e = 0; e < epochs; ++e) {
      const int universe = corpus.snapshot()->universe_size();
      std::vector<CorpusUpdate> epoch;
      std::vector<double> fresh(dim);
      for (double& x : fresh) x = rng.Uniform(-1.0, 1.0);
      epoch.push_back(CorpusUpdate::InsertVector(rng.Uniform(0.0, 1.0),
                                                 fresh));
      epoch.push_back(CorpusUpdate::SetWeight(rng.UniformInt(0, universe - 1),
                                              rng.Uniform(0.0, 2.0)));
      if (universe > 1 && rng.UniformInt(0, 1) == 1) {
        epoch.push_back(CorpusUpdate::Erase(rng.UniformInt(0, universe - 1)));
      }
      corpus.Apply(epoch);
    }
    const SnapshotPtr snapshot = corpus.snapshot();
    const std::vector<std::uint8_t> image = EncodeSnapshot(*snapshot);
    CorpusState state;
    ASSERT_TRUE(DecodeSnapshot(image, &state));
    ExpectVectorStateMatches(*snapshot, state);
    EXPECT_EQ(EncodeSnapshot(*snapshot), image);
    EXPECT_EQ(EncodeState(state), image);
  }
}

TEST(SnapshotCodecTest, VectorRestoreRebuildsTheExactVersion) {
  Corpus corpus = MakeVectorCorpus(14, 5, 107);
  corpus.Apply(CorpusUpdate::SetWeight(3, 0.625));
  corpus.Apply(CorpusUpdate::Erase(7));
  const SnapshotPtr original = corpus.snapshot();
  CorpusState state;
  ASSERT_TRUE(DecodeSnapshot(EncodeSnapshot(*original), &state));

  // Restore into a fresh corpus of the *other* representation: the repr
  // must switch with the image.
  Corpus restored = MakeCorpus(3, 99);
  EXPECT_EQ(restored.Restore(std::move(state)), original->version());
  const SnapshotPtr snapshot = restored.snapshot();
  EXPECT_EQ(snapshot->repr(), engine::MetricRepr::kVector);
  EXPECT_EQ(snapshot->version(), original->version());
  EXPECT_EQ(snapshot->candidates(), original->candidates());
  EXPECT_EQ(snapshot->lambda(), original->lambda());
  const std::vector<CorpusUpdate> epoch{CorpusUpdate::SetWeight(0, 0.5)};
  EXPECT_EQ(corpus.Apply(epoch), restored.Apply(epoch));
}

TEST(SnapshotCodecTest, VectorImageEveryPrefixTruncationRejected) {
  Corpus corpus = MakeVectorCorpus(6, 3, 109);
  const std::vector<std::uint8_t> image = EncodeSnapshot(*corpus.snapshot());
  CorpusState state;
  for (std::size_t len = 0; len < image.size(); ++len) {
    EXPECT_FALSE(DecodeSnapshot(std::span(image.data(), len), &state))
        << "prefix length " << len;
  }
  std::vector<std::uint8_t> trailing = image;
  trailing.push_back(0);
  EXPECT_FALSE(DecodeSnapshot(trailing, &state));
}

TEST(SnapshotCodecTest, VectorImageEveryByteCorruptionRejected) {
  Corpus corpus = MakeVectorCorpus(4, 3, 113);
  const std::vector<std::uint8_t> image = EncodeSnapshot(*corpus.snapshot());
  CorpusState state;
  ASSERT_TRUE(DecodeSnapshot(image, &state));
  for (std::size_t pos = 0; pos < image.size(); ++pos) {
    std::vector<std::uint8_t> corrupt = image;
    corrupt[pos] ^= 0x20;
    EXPECT_FALSE(DecodeSnapshot(corrupt, &state)) << "byte " << pos;
  }
}

TEST(SnapshotCodecTest, VectorImageRechecksummedTamperingRejected) {
  Corpus corpus = MakeVectorCorpus(5, 4, 127);
  const std::vector<std::uint8_t> image = EncodeSnapshot(*corpus.snapshot());
  CorpusState state;
  ASSERT_TRUE(DecodeSnapshot(image, &state));
  const int n = corpus.snapshot()->universe_size();

  // Dimension zero: the payload equation would hold with no vector data,
  // so the bound check has to fire first.
  std::vector<std::uint8_t> zero_dim = image;
  for (int i = 0; i < 4; ++i) zero_dim[27 + i] = 0;
  EXPECT_FALSE(DecodeSnapshot(Rechecksum(zero_dim), &state));

  // Dimension above kMaxVectorDim: rejected before any size arithmetic
  // could overflow.
  std::vector<std::uint8_t> huge_dim = image;
  for (int i = 0; i < 4; ++i) huge_dim[27 + i] = 0xff;
  EXPECT_FALSE(DecodeSnapshot(Rechecksum(huge_dim), &state));

  // Dimension off by one: image length no longer matches the equation.
  std::vector<std::uint8_t> skew_dim = image;
  skew_dim[27] ^= 0x01;
  EXPECT_FALSE(DecodeSnapshot(Rechecksum(skew_dim), &state));

  // First weight -> NaN (weights start after the u32 dim, at byte 31).
  std::vector<std::uint8_t> nan_weight = image;
  for (int i = 0; i < 8; ++i) nan_weight[31 + i] = 0xff;
  EXPECT_FALSE(DecodeSnapshot(Rechecksum(nan_weight), &state));

  // First liveness byte out of {0, 1}.
  std::vector<std::uint8_t> bad_alive = image;
  bad_alive[31 + 8 * n] = 2;
  EXPECT_FALSE(DecodeSnapshot(Rechecksum(bad_alive), &state));

  // First vector component -> NaN: kernels would propagate it into every
  // distance, so the image is rejected at the trust boundary.
  std::vector<std::uint8_t> nan_component = image;
  for (int i = 0; i < 8; ++i) nan_component[31 + 9 * n + i] = 0xff;
  EXPECT_FALSE(DecodeSnapshot(Rechecksum(nan_component), &state));

  // Component magnitude above kMaxVectorComponent (2e307 > 1e100): the
  // squared-distance kernel could overflow to inf.
  std::vector<std::uint8_t> huge_component = image;
  huge_component[31 + 9 * n + 7] = 0x7f;
  huge_component[31 + 9 * n + 6] = 0xc0;
  EXPECT_FALSE(DecodeSnapshot(Rechecksum(huge_component), &state));
}

// A vector image decoded into state must refuse components the update
// path would have refused, even when hand-assembled via EncodeState.
TEST(SnapshotCodecTest, VectorInvalidValuesInWellFormedImageRejected) {
  Corpus corpus = MakeVectorCorpus(4, 3, 131);
  CorpusState state;
  ASSERT_TRUE(DecodeSnapshot(EncodeSnapshot(*corpus.snapshot()), &state));
  CorpusState tampered = state;
  std::vector<double> rows = tampered.vectors.data();
  rows[0] = -1e200;  // above kMaxVectorComponent in magnitude
  tampered.vectors = VectorMetric::FromRows(3, std::move(rows));
  CorpusState decoded;
  EXPECT_FALSE(DecodeSnapshot(EncodeState(tampered), &decoded));
}

// EncodeState is not a validator; DecodeSnapshot is the trust boundary
// and must reject values an epoch replay would have refused even when
// the checksum is intact.
TEST(SnapshotCodecTest, InvalidValuesInWellFormedImageRejected) {
  Corpus corpus = MakeCorpus(4, 41);
  CorpusState state;
  ASSERT_TRUE(DecodeSnapshot(EncodeSnapshot(*corpus.snapshot()), &state));
  state.weights[1] = -0.25;
  CorpusState decoded;
  EXPECT_FALSE(DecodeSnapshot(EncodeState(state), &decoded));
}

std::string TestDir(const std::string& name) {
  const fs::path dir = fs::path(testing::TempDir()) / name;
  fs::remove_all(dir);
  return dir.string();
}

TEST(CheckpointStoreTest, SaveLoadRoundTrip) {
  const std::string dir = TestDir("ckpt_roundtrip");
  CheckpointStore store(dir);
  Rng rng(51);
  Corpus corpus = MakeCorpus(15, 53);
  ASSERT_TRUE(store.Save(*corpus.snapshot()));
  for (int e = 0; e < 3; ++e) {
    corpus.Apply(engine::MakeSyntheticEpoch(
        corpus.snapshot()->universe_size(), /*churn=*/true, e, rng));
    ASSERT_TRUE(store.Save(*corpus.snapshot()));
  }
  EXPECT_EQ(store.ListVersions(), (std::vector<std::uint64_t>{1, 2, 3}));

  std::string error;
  std::optional<CorpusState> loaded = store.LoadLatest(&error);
  ASSERT_TRUE(loaded.has_value()) << error;
  ExpectStateMatches(*corpus.snapshot(), *loaded);
}

TEST(CheckpointStoreTest, RetentionKeepsNewestK) {
  const std::string dir = TestDir("ckpt_retain");
  CheckpointStore::Options options;
  options.retain = 2;
  CheckpointStore store(dir, options);
  Corpus corpus = MakeCorpus(6, 57);
  ASSERT_TRUE(store.Save(*corpus.snapshot()));
  for (int e = 0; e < 4; ++e) {
    corpus.Apply(CorpusUpdate::SetWeight(e, 0.25 * (e + 1)));
    ASSERT_TRUE(store.Save(*corpus.snapshot()));
  }
  EXPECT_EQ(store.ListVersions(), (std::vector<std::uint64_t>{3, 4}));
  std::optional<CorpusState> loaded = store.LoadLatest();
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->version, 4u);
}

TEST(CheckpointStoreTest, EmptyDirHasNothingToLoad) {
  CheckpointStore store(TestDir("ckpt_empty"));
  std::string error;
  EXPECT_FALSE(store.LoadLatest(&error).has_value());
  EXPECT_FALSE(error.empty());
  EXPECT_TRUE(store.ListVersions().empty());
}

// A crashed writer leaves a .tmp file (possibly garbage); load must not
// even consider it.
TEST(CheckpointStoreTest, TornTempFilesIgnored) {
  const std::string dir = TestDir("ckpt_torn");
  CheckpointStore store(dir);
  Corpus corpus = MakeCorpus(10, 61);
  ASSERT_TRUE(store.Save(*corpus.snapshot()));
  {
    std::ofstream torn(
        fs::path(dir) / "checkpoint-00000000000000000009.snap.tmp",
        std::ios::binary);
    torn << "half-written garbage";
  }
  EXPECT_EQ(store.ListVersions(), (std::vector<std::uint64_t>{0}));
  std::optional<CorpusState> loaded = store.LoadLatest();
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->version, 0u);
}

// A corrupt newest checkpoint degrades to the previous good one instead
// of failing the cold start.
TEST(CheckpointStoreTest, CorruptLatestFallsBackToOlder) {
  const std::string dir = TestDir("ckpt_corrupt");
  CheckpointStore store(dir);
  Corpus corpus = MakeCorpus(12, 67);
  ASSERT_TRUE(store.Save(*corpus.snapshot()));  // version 0, good
  corpus.Apply(CorpusUpdate::SetWeight(1, 0.75));
  ASSERT_TRUE(store.Save(*corpus.snapshot()));  // version 1: truncate it
  const fs::path newest =
      fs::path(dir) / "checkpoint-00000000000000000001.snap";
  ASSERT_TRUE(fs::exists(newest));
  fs::resize_file(newest, fs::file_size(newest) / 2);

  std::optional<CorpusState> loaded = store.LoadLatest();
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->version, 0u);

  // Zero-length (just-created-then-crashed) newest behaves the same.
  fs::resize_file(newest, 0);
  loaded = store.LoadLatest();
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->version, 0u);
}

// ---- Delta checkpoints -----------------------------------------------------

TEST(SnapshotCodecTest, DeltaRoundTripAndTotality) {
  Rng rng(71);
  Corpus corpus = MakeCorpus(20, 73);
  std::vector<std::vector<CorpusUpdate>> epochs;
  for (int e = 0; e < 4; ++e) {
    epochs.push_back(engine::MakeSyntheticEpoch(
        corpus.snapshot()->universe_size(), /*churn=*/true, e, rng));
    corpus.Apply(epochs.back());
  }
  const std::vector<std::uint8_t> delta = EncodeDelta(0, epochs);
  std::uint64_t from = 99;
  std::vector<std::vector<CorpusUpdate>> decoded;
  ASSERT_TRUE(DecodeDelta(delta, &from, &decoded));
  EXPECT_EQ(from, 0u);
  ASSERT_EQ(decoded.size(), epochs.size());
  for (std::size_t i = 0; i < epochs.size(); ++i) {
    ASSERT_EQ(decoded[i].size(), epochs[i].size());
    for (std::size_t j = 0; j < epochs[i].size(); ++j) {
      EXPECT_EQ(decoded[i][j].kind, epochs[i][j].kind);
      EXPECT_EQ(decoded[i][j].u, epochs[i][j].u);
      EXPECT_EQ(decoded[i][j].value, epochs[i][j].value);
      EXPECT_EQ(decoded[i][j].distances, epochs[i][j].distances);
    }
  }
  // Totality: every strict prefix and every single-byte corruption is
  // rejected (the CRC trailer covers header and body alike).
  for (std::size_t len = 0; len < delta.size(); ++len) {
    EXPECT_FALSE(DecodeDelta(std::span(delta.data(), len), &from, &decoded));
  }
  for (std::size_t i = 0; i < delta.size(); ++i) {
    std::vector<std::uint8_t> corrupt = delta;
    corrupt[i] ^= 0x01;
    EXPECT_FALSE(DecodeDelta(corrupt, &from, &decoded)) << "byte " << i;
  }
}

// The double-encode fix: epoch checkpoints chain O(epoch) delta files
// onto the last full image, and LoadLatest folds them back into exactly
// the state a full checkpoint would have held.
TEST(CheckpointStoreTest, DeltaChainFoldsToLiveState) {
  const std::string dir = TestDir("ckpt_delta");
  CheckpointStore store(dir);
  Rng rng(77);
  Corpus corpus = MakeCorpus(12, 79);
  ASSERT_TRUE(store.Save(*corpus.snapshot()));  // full image at version 0
  for (int e = 0; e < 5; ++e) {
    const std::uint64_t from = corpus.snapshot()->version();
    std::vector<std::vector<CorpusUpdate>> epochs;
    epochs.push_back(engine::MakeSyntheticEpoch(
        corpus.snapshot()->universe_size(), /*churn=*/true, e, rng));
    corpus.Apply(epochs.back());
    ASSERT_TRUE(store.SaveDelta(from, from + 1, epochs));
  }
  // Only the version-0 full image exists; everything since is deltas.
  EXPECT_EQ(store.ListVersions(), (std::vector<std::uint64_t>{0}));
  std::optional<CorpusState> loaded = store.LoadLatest();
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->version, 5u);
  ExpectStateMatches(*corpus.snapshot(), *loaded);

  // A later full save subsumes the chain and prunes the delta files.
  ASSERT_TRUE(store.Save(*corpus.snapshot()));
  int deltas = 0;
  for (const fs::directory_entry& entry : fs::directory_iterator(dir)) {
    if (entry.path().extension() == ".delta") ++deltas;
  }
  EXPECT_EQ(deltas, 0);
}

TEST(CheckpointStoreTest, DeltaRefusesWhenItCannotChain) {
  const std::string dir = TestDir("ckpt_delta_chain");
  Corpus corpus = MakeCorpus(8, 83);
  std::vector<std::vector<CorpusUpdate>> epoch{
      {CorpusUpdate::SetWeight(0, 0.5)}};
  {
    CheckpointStore store(dir);
    // Nothing saved yet this process: no base to chain from.
    EXPECT_FALSE(store.SaveDelta(0, 1, epoch));
    ASSERT_TRUE(store.Save(*corpus.snapshot()));
    // Gap: the chain extends version 0, not 3.
    EXPECT_FALSE(store.SaveDelta(3, 4, epoch));
    EXPECT_TRUE(store.SaveDelta(0, 1, epoch));
  }
  {
    // A fresh process must not chain onto files it has not verified
    // writing — the first save is always a full image.
    CheckpointStore restarted(dir);
    EXPECT_FALSE(restarted.SaveDelta(1, 2, epoch));
  }
  {
    // max_delta_chain bounds the replay a cold start can be asked to do.
    CheckpointStore::Options options;
    options.max_delta_chain = 2;
    CheckpointStore bounded(TestDir("ckpt_delta_cap"), options);
    ASSERT_TRUE(bounded.Save(*corpus.snapshot()));
    EXPECT_TRUE(bounded.SaveDelta(0, 1, epoch));
    EXPECT_TRUE(bounded.SaveDelta(1, 2, epoch));
    EXPECT_FALSE(bounded.SaveDelta(2, 3, epoch));
  }
}

// A corrupt delta ends the fold at the last good link — an older but
// valid state — instead of failing the cold start or folding garbage.
TEST(CheckpointStoreTest, CorruptDeltaEndsFoldAtLastGoodLink) {
  const std::string dir = TestDir("ckpt_delta_corrupt");
  CheckpointStore store(dir);
  Rng rng(89);
  Corpus corpus = MakeCorpus(10, 97);
  ASSERT_TRUE(store.Save(*corpus.snapshot()));
  std::vector<CorpusState> states;
  for (int e = 0; e < 3; ++e) {
    const std::uint64_t from = corpus.snapshot()->version();
    std::vector<std::vector<CorpusUpdate>> epochs;
    epochs.push_back(engine::MakeSyntheticEpoch(
        corpus.snapshot()->universe_size(), /*churn=*/false, e, rng));
    corpus.Apply(epochs.back());
    states.push_back(corpus.snapshot()->State());
    ASSERT_TRUE(store.SaveDelta(from, from + 1, epochs));
  }
  // Truncate the middle link (0->1 stays good, 1->2 dies, 2->3 orphaned).
  const fs::path middle =
      fs::path(dir) / ("delta-00000000000000000001-"
                       "00000000000000000002.delta");
  ASSERT_TRUE(fs::exists(middle));
  fs::resize_file(middle, fs::file_size(middle) / 2);

  std::optional<CorpusState> loaded = store.LoadLatest();
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->version, 1u);
  EXPECT_EQ(EncodeState(*loaded), EncodeState(states[0]));
}

// Checkpoint store round-trips vector corpora through the same save/load
// path, including the delta-fold (InsertVector epochs chained onto a
// full vector image).
TEST(CheckpointStoreTest, VectorSaveLoadAndDeltaFold) {
  const std::string dir = TestDir("ckpt_vector");
  CheckpointStore store(dir);
  Rng rng(137);
  Corpus corpus = MakeVectorCorpus(10, 4, 139);
  ASSERT_TRUE(store.Save(*corpus.snapshot()));
  for (int e = 0; e < 3; ++e) {
    const std::uint64_t from = corpus.snapshot()->version();
    std::vector<double> fresh(4);
    for (double& x : fresh) x = rng.Uniform(-1.0, 1.0);
    std::vector<std::vector<CorpusUpdate>> epochs;
    epochs.push_back({CorpusUpdate::InsertVector(0.5 + 0.1 * e, fresh),
                      CorpusUpdate::SetWeight(e, 0.25 * (e + 1))});
    corpus.Apply(epochs.back());
    ASSERT_TRUE(store.SaveDelta(from, from + 1, epochs));
  }
  std::optional<CorpusState> loaded = store.LoadLatest();
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->version, 3u);
  ExpectVectorStateMatches(*corpus.snapshot(), *loaded);
}

}  // namespace
}  // namespace snapshot
}  // namespace diverse
