// Bit-equality suite for pruned candidate scans: every pruned variant must
// return EXACTLY what the full scan returns — same elements, same IEEE
// bits of gain/objective — across randomized churned corpora, thread
// counts, algorithms (greedy, local search, dynamic updater), engine
// plans (single-node, sharded, wire-level shard kernels), and across the
// certify/fallback split (non-metric data demotes to a full rescan, never
// to a wrong answer).
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <numeric>
#include <vector>

#include "algorithms/distributed.h"
#include "algorithms/local_search.h"
#include "core/incremental_evaluator.h"
#include "core/solution_state.h"
#include "data/synthetic.h"
#include "dynamic/dynamic_updater.h"
#include "dynamic/perturbation.h"
#include "engine/corpus.h"
#include "engine/engine.h"
#include "engine/execution_plan.h"
#include "engine/query.h"
#include "matroid/uniform_matroid.h"
#include "metric/dense_metric.h"
#include "metric/pruning_index.h"
#include "metric/vector_metric.h"
#include "rpc/shard_node.h"
#include "rpc/wire.h"
#include "submodular/modular_function.h"
#include "util/random.h"

namespace diverse {
namespace {

VectorMetric MakeVectors(int n, int dim, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> data;
  data.reserve(static_cast<std::size_t>(n) * dim);
  for (int i = 0; i < n * dim; ++i) data.push_back(rng.Uniform(-2.0, 2.0));
  return VectorMetric::FromRows(dim, std::move(data));
}

std::vector<int> AllIds(int n) {
  std::vector<int> ids(n);
  std::iota(ids.begin(), ids.end(), 0);
  return ids;
}

std::shared_ptr<const PruningIndex> BuildIndex(const MetricBackend& metric,
                                               int n, int pivots) {
  PruningIndex::Options options;
  options.num_pivots = pivots;
  return PruningIndex::Build(metric, AllIds(n), options);
}

// ---- Evaluator-level swap scans --------------------------------------------

class SwapScanFuzz : public ::testing::TestWithParam<int> {};

TEST_P(SwapScanFuzz, PrunedSwapScansBitEqualFullScans) {
  const int seed = GetParam();
  const int n = 60;
  Rng rng(seed * 17 + 1);
  const VectorMetric vectors = MakeVectors(n, 6, seed * 31 + 5);
  std::vector<double> weights(n);
  for (double& w : weights) w = rng.Uniform(0.0, 1.0);
  const ModularFunction quality(weights);
  const DiversificationProblem problem(&vectors, &quality, 0.4);
  const auto index = BuildIndex(vectors, n, 6);
  ASSERT_TRUE(index->usable());

  for (int threads : {1, 4}) {
    IncrementalEvaluator::Options options;
    options.num_threads = threads;
    options.parallel_grain = 1;
    SolutionState state(&problem);
    Rng picks(seed * 7 + threads);
    for (int i = 0; i < 8; ++i) {
      int v = picks.UniformInt(0, n - 1);
      while (state.Contains(v)) v = picks.UniformInt(0, n - 1);
      state.Add(v);
    }
    const IncrementalEvaluator eval(&state, options);

    const BestSwapResult full =
        eval.BestSwapOver(state.members(), eval.Universe());
    const BestSwapResult pruned =
        eval.BestSwapOverPruned(state.members(), eval.Universe(), *index);
    EXPECT_EQ(full.out, pruned.out);
    EXPECT_EQ(full.in, pruned.in);
    EXPECT_EQ(full.gain, pruned.gain);  // bitwise

    for (int out : state.members()) {
      const ScoredCandidate a = eval.BestSwapInFor(out, eval.Universe());
      const ScoredCandidate b =
          eval.BestSwapInForPruned(out, eval.Universe(), *index);
      EXPECT_EQ(a.element, b.element) << "out=" << out;
      EXPECT_EQ(a.gain, b.gain);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SwapScanFuzz, ::testing::Range(1, 9));

TEST(PrunedSwapScanTest, PruningActuallyPrunesOnClusteredData) {
  ClusteredConfig config;
  config.n = 300;
  config.dimension = 4;
  config.num_clusters = 8;
  Rng rng(51);
  const Dataset data = MakeClusteredEuclidean(config, rng);
  const ModularFunction quality(data.weights);
  const DiversificationProblem problem(&data.metric, &quality, 0.5);
  const auto index = BuildIndex(data.metric, config.n, 8);

  SolutionState state(&problem);
  for (int v = 0; v < 10; ++v) state.Add(v * 29 % config.n);
  const IncrementalEvaluator eval(&state);
  const BestSwapResult full =
      eval.BestSwapOver(state.members(), eval.Universe());
  const BestSwapResult pruned =
      eval.BestSwapOverPruned(state.members(), eval.Universe(), *index);
  EXPECT_EQ(full.out, pruned.out);
  EXPECT_EQ(full.in, pruned.in);
  EXPECT_EQ(full.gain, pruned.gain);
  const IncrementalEvaluator::Stats stats = eval.stats();
  EXPECT_GT(stats.candidates_pruned, 0);
  EXPECT_GT(stats.certified_scans, 0);
  EXPECT_EQ(stats.fallback_scans, 0);  // Euclidean data is a true metric
}

// Non-metric data: a massive triangle violation must be DETECTED (the
// violating scan demotes to the unpruned path) and the answer must still
// be bit-equal to the full scan.
TEST(PrunedSwapScanTest, TriangleViolationFallsBackBitEqual) {
  const int n = 40;
  Rng rng(61);
  Dataset data = MakeUniformSynthetic(n, rng);  // U[1,2]: genuine metric
  // d(0, 25) = 50 breaks every triangle through any pivot (bounds cap
  // pair distances near 4).
  data.metric.SetDistance(0, 25, 50.0);
  const ModularFunction quality(data.weights);
  const DiversificationProblem problem(&data.metric, &quality, 0.4);
  const auto index = BuildIndex(data.metric, n, 5);

  SolutionState state(&problem);
  for (int v : {0, 7, 14, 21}) state.Add(v);  // 0 in S, 25 a candidate
  const IncrementalEvaluator eval(&state);
  const BestSwapResult full =
      eval.BestSwapOver(state.members(), eval.Universe());
  const BestSwapResult pruned =
      eval.BestSwapOverPruned(state.members(), eval.Universe(), *index);
  EXPECT_EQ(full.out, pruned.out);
  EXPECT_EQ(full.in, pruned.in);
  EXPECT_EQ(full.gain, pruned.gain);
  EXPECT_GT(eval.stats().fallback_scans, 0);

  const ScoredCandidate a = eval.BestSwapInFor(0, eval.Universe());
  const ScoredCandidate b =
      eval.BestSwapInForPruned(0, eval.Universe(), *index);
  EXPECT_EQ(a.element, b.element);
  EXPECT_EQ(a.gain, b.gain);
}

// ---- Pruned greedy ---------------------------------------------------------

class PrunedGreedyFuzz : public ::testing::TestWithParam<int> {};

TEST_P(PrunedGreedyFuzz, PrunedGreedyBitEqualFullGreedy) {
  const int seed = GetParam();
  const int n = 80;
  Rng rng(seed * 13 + 3);
  const VectorMetric vectors = MakeVectors(n, 5, seed * 41 + 7);
  std::vector<double> weights(n);
  for (double& w : weights) w = rng.Uniform(0.0, 1.0);
  const ModularFunction quality(weights);
  const DiversificationProblem problem(&vectors, &quality, 0.3);

  CandidateScanConfig pruned_config;
  const auto index = BuildIndex(vectors, n, 6);
  pruned_config.pruning = index.get();

  const std::vector<int> candidates = AllIds(n);
  for (int p : {1, 5, 12}) {
    const AlgorithmResult full =
        GreedyVertexOnCandidates(problem, candidates, p);
    const AlgorithmResult pruned =
        GreedyVertexOnCandidates(problem, candidates, p, pruned_config);
    EXPECT_EQ(full.elements, pruned.elements) << "p=" << p;
    EXPECT_EQ(full.objective, pruned.objective);  // bitwise
    EXPECT_EQ(full.steps, pruned.steps);
  }

  // Dense oracle of the same data: identical answers again (resident
  // index, no stored rows).
  const DenseMetric dense = DenseMetric::Materialize(vectors);
  const DiversificationProblem dense_problem(&dense, &quality, 0.3);
  CandidateScanConfig dense_config;
  const auto dense_index = BuildIndex(dense, n, 6);
  dense_config.pruning = dense_index.get();
  const AlgorithmResult dense_full =
      GreedyVertexOnCandidates(dense_problem, candidates, 12);
  const AlgorithmResult dense_pruned =
      GreedyVertexOnCandidates(dense_problem, candidates, 12, dense_config);
  EXPECT_EQ(dense_full.elements, dense_pruned.elements);
  EXPECT_EQ(dense_full.objective, dense_pruned.objective);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PrunedGreedyFuzz, ::testing::Range(1, 9));

TEST(PrunedGreedyTest, ShardedGreedyBitEqualWithPruning) {
  const int n = 90;
  Rng rng(71);
  const VectorMetric vectors = MakeVectors(n, 6, 73);
  std::vector<double> weights(n);
  for (double& w : weights) w = rng.Uniform(0.0, 1.0);
  const ModularFunction quality(weights);
  const DiversificationProblem problem(&vectors, &quality, 0.4);
  CandidateScanConfig config;
  const auto index = BuildIndex(vectors, n, 6);
  config.pruning = index.get();
  const std::vector<int> candidates = AllIds(n);
  const AlgorithmResult full =
      ShardedGreedy(problem, candidates, 10, 4, 0, 99);
  const AlgorithmResult pruned =
      ShardedGreedy(problem, candidates, 10, 4, 0, 99, config);
  EXPECT_EQ(full.elements, pruned.elements);
  EXPECT_EQ(full.objective, pruned.objective);
}

TEST(PrunedGreedyTest, TriangleViolationInGreedyFallsBackBitEqual) {
  const int n = 50;
  Rng rng(81);
  Dataset data = MakeUniformSynthetic(n, rng);
  data.metric.SetDistance(3, 30, 60.0);  // massive violation
  const ModularFunction quality(data.weights);
  const DiversificationProblem problem(&data.metric, &quality, 0.5);
  CandidateScanConfig config;
  const auto index = BuildIndex(data.metric, n, 5);
  config.pruning = index.get();
  const std::vector<int> candidates = AllIds(n);
  const AlgorithmResult full = GreedyVertexOnCandidates(problem, candidates, 8);
  const AlgorithmResult pruned =
      GreedyVertexOnCandidates(problem, candidates, 8, config);
  EXPECT_EQ(full.elements, pruned.elements);
  EXPECT_EQ(full.objective, pruned.objective);
}

// ---- Local search ----------------------------------------------------------

TEST(PrunedLocalSearchTest, LocalSearchBitEqualWithPruning) {
  for (int seed : {1, 2, 3, 4}) {
    const int n = 70;
    Rng rng(seed * 19 + 5);
    const VectorMetric vectors = MakeVectors(n, 5, seed * 23 + 9);
    std::vector<double> weights(n);
    for (double& w : weights) w = rng.Uniform(0.0, 1.0);
    const ModularFunction quality(weights);
    const DiversificationProblem problem(&vectors, &quality, 0.4);
    const UniformMatroid matroid(n, 9);

    const AlgorithmResult full = LocalSearch(problem, matroid, {});
    LocalSearchOptions options;
    const auto index = BuildIndex(vectors, n, 6);
    options.pruning = index.get();
    const AlgorithmResult pruned = LocalSearch(problem, matroid, options);
    EXPECT_EQ(full.elements, pruned.elements) << "seed=" << seed;
    EXPECT_EQ(full.objective, pruned.objective);
  }
}

// ---- Dynamic updater -------------------------------------------------------

TEST(PrunedDynamicTest, ObliviousUpdatesBitEqualWithPruning) {
  const int n = 40;
  for (int seed : {1, 2, 3}) {
    Rng rng(seed * 101 + 11);
    const Dataset base = MakeUniformSynthetic(n, rng);

    // Two identical mutable twins fed the same perturbation stream.
    auto run = [&](bool prune) {
      Rng stream(seed * 7 + 1);
      DenseMetric metric = base.metric;
      ModularFunction weights(base.weights);
      DiversificationProblem problem(&metric, &weights, 0.3);
      std::vector<int> initial;
      for (int i = 0; i < 8; ++i) initial.push_back(i * 5 % n);
      DynamicUpdater updater(&problem, &weights, &metric, initial);
      std::shared_ptr<const PruningIndex> index;
      if (prune) {
        index = BuildIndex(metric, n, 5);
        updater.SetPruning(index.get());
      }
      std::vector<std::vector<int>> trajectory;
      for (int step = 0; step < 30; ++step) {
        // Alternate the paper's VPERTURBATION / EPERTURBATION; U[1, 2]
        // distance draws keep the space a genuine metric (2*lo >= hi).
        const Perturbation perturbation =
            (step % 2 == 0)
                ? RandomWeightPerturbation(weights, stream, 0.0, 1.0)
                : RandomDistancePerturbation(metric, stream, 1.0, 2.0);
        updater.ApplyAndUpdate(perturbation);
        trajectory.push_back(updater.solution());
      }
      return trajectory;
    };

    EXPECT_EQ(run(false), run(true)) << "seed=" << seed;
  }
}

// ---- Engine end-to-end -----------------------------------------------------

bool SameAnswer(const engine::QueryResult& a, const engine::QueryResult& b) {
  return a.ok == b.ok && a.elements == b.elements &&
         a.objective == b.objective && a.corpus_version == b.corpus_version;
}

TEST(PrunedEngineTest, ForceVsOffBitEqualAcrossChurn) {
  const int n = 60;
  const int dim = 6;
  Rng rng(121);
  const VectorMetric vectors = MakeVectors(n, dim, 127);
  std::vector<double> weights(n);
  for (double& w : weights) w = rng.Uniform(0.0, 1.0);

  engine::DiversificationEngine::Options off;
  off.num_workers = 1;
  off.pruning = engine::PruningMode::kOff;
  engine::DiversificationEngine::Options force;
  force.num_workers = 1;
  force.pruning = engine::PruningMode::kForce;
  force.pruning_config.num_pivots = 6;
  force.pruning_config.rebuild_after = 2;  // exercise staleness rebuilds

  engine::DiversificationEngine plain(weights, vectors, 0.3, off);
  engine::DiversificationEngine pruned(weights, vectors, 0.3, force);

  const long long rebuilds_before = GlobalPruningCounters().rebuilds.value();

  engine::Query query;
  query.p = 10;
  engine::Query forced = query;
  forced.pruning = engine::PruningMode::kForce;
  engine::Query sharded = forced;
  sharded.plan = engine::PlanKind::kSharded;
  sharded.num_shards = 3;

  EXPECT_TRUE(SameAnswer(plain.RunSync(query), pruned.RunSync(forced)));
  EXPECT_TRUE(SameAnswer(plain.RunSync(sharded), pruned.RunSync(sharded)));

  for (int e = 0; e < 6; ++e) {
    std::vector<double> fresh(dim);
    for (double& x : fresh) x = rng.Uniform(-2.0, 2.0);
    const double weight = rng.Uniform(0.0, 1.0);
    const std::vector<engine::CorpusUpdate> epoch = {
        engine::CorpusUpdate::InsertVector(weight, fresh),
        engine::CorpusUpdate::Erase(e)};  // ids 0..5 start alive
    plain.ApplyUpdates(epoch);
    pruned.ApplyUpdates(epoch);
    EXPECT_TRUE(SameAnswer(plain.RunSync(query), pruned.RunSync(forced)))
        << "epoch " << e;
    EXPECT_TRUE(SameAnswer(plain.RunSync(sharded), pruned.RunSync(sharded)))
        << "epoch " << e;

    engine::Query local = query;
    local.algorithm = engine::QueryAlgorithm::kLocalSearch;
    engine::Query local_forced = local;
    local_forced.pruning = engine::PruningMode::kForce;
    EXPECT_TRUE(
        SameAnswer(plain.RunSync(local), pruned.RunSync(local_forced)));
  }
  // rebuild_after=2 with 6 structural epochs must have rebuilt at least
  // twice.
  EXPECT_GE(GlobalPruningCounters().rebuilds.value(), rebuilds_before + 2);
}

TEST(PrunedEngineTest, AutoPrunesVectorSnapshotsOnly) {
  const int n = 30;
  Rng rng(131);
  const VectorMetric vectors = MakeVectors(n, 4, 137);
  std::vector<double> weights(n);
  for (double& w : weights) w = rng.Uniform(0.0, 1.0);

  engine::DiversificationEngine::Options options;
  options.num_workers = 1;  // pruning defaults to kAuto
  engine::DiversificationEngine vec_engine(weights, vectors, 0.3, options);
  engine::DiversificationEngine dense_engine(
      weights, DenseMetric::Materialize(vectors), 0.3, options);

  // kAuto resolves the index on the vector snapshot, not the dense one.
  const engine::SnapshotPtr vec_snapshot = vec_engine.corpus().snapshot();
  const engine::SnapshotPtr dense_snapshot = dense_engine.corpus().snapshot();
  ASSERT_NE(vec_snapshot->pruning(), nullptr);
  ASSERT_NE(dense_snapshot->pruning(), nullptr);
  EXPECT_NE(engine::ResolvePruning(*vec_snapshot, engine::PruningMode::kAuto),
            nullptr);
  EXPECT_EQ(
      engine::ResolvePruning(*dense_snapshot, engine::PruningMode::kAuto),
      nullptr);
  EXPECT_NE(
      engine::ResolvePruning(*dense_snapshot, engine::PruningMode::kForce),
      nullptr);
  EXPECT_EQ(engine::ResolvePruning(*vec_snapshot, engine::PruningMode::kOff),
            nullptr);

  // And the two engines agree bitwise on answers either way.
  engine::Query query;
  query.p = 8;
  EXPECT_TRUE(SameAnswer(vec_engine.RunSync(query),
                         dense_engine.RunSync(query)));
}

// ---- Wire-level shard kernels ----------------------------------------------

TEST(PrunedShardNodeTest, KernelRepliesByteEqualWithPruning) {
  const int n = 48;
  Rng rng(141);
  const VectorMetric vectors = MakeVectors(n, 5, 149);
  std::vector<double> weights(n);
  for (double& w : weights) w = rng.Uniform(0.0, 1.0);

  // Same baseline state for both nodes, via the vector-repr state image.
  engine::Corpus corpus(weights, vectors, 0.4);
  engine::CorpusState state = corpus.snapshot()->State();

  rpc::ShardNode::Options off;
  off.pruning = engine::PruningMode::kOff;
  rpc::ShardNode::Options force;
  force.pruning = engine::PruningMode::kForce;
  force.pruning_config.num_pivots = 5;
  rpc::ShardNode plain(engine::CorpusState(state), off);
  rpc::ShardNode pruned(engine::CorpusState(state), force);

  for (int shard = 0; shard < 3; ++shard) {
    rpc::ShardQueryRequest request;
    request.snapshot_version = state.version;
    request.shard_salt = 7;
    request.num_shards = 3;
    request.shard_index = shard;
    request.p = 6;
    request.per_shard = 6;
    const std::vector<std::uint8_t> payload = rpc::Encode(request);
    EXPECT_EQ(plain.Handle(payload), pruned.Handle(payload))
        << "shard " << shard;
  }
}

}  // namespace
}  // namespace diverse
