#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "data/synthetic.h"
#include "metric/cosine_metric.h"
#include "metric/dense_metric.h"
#include "metric/euclidean_metric.h"
#include "metric/metric_utils.h"
#include "metric/metric_validation.h"
#include "metric/relaxed_metric.h"
#include "util/random.h"

namespace diverse {
namespace {

TEST(DenseMetricTest, StartsAtZero) {
  DenseMetric m(4);
  EXPECT_EQ(m.size(), 4);
  for (int u = 0; u < 4; ++u) {
    for (int v = 0; v < 4; ++v) {
      EXPECT_DOUBLE_EQ(m.Distance(u, v), 0.0);
    }
  }
}

TEST(DenseMetricTest, SetDistanceIsSymmetric) {
  DenseMetric m(3);
  m.SetDistance(0, 2, 1.5);
  EXPECT_DOUBLE_EQ(m.Distance(0, 2), 1.5);
  EXPECT_DOUBLE_EQ(m.Distance(2, 0), 1.5);
  EXPECT_DOUBLE_EQ(m.Distance(0, 1), 0.0);
}

TEST(DenseMetricTest, FromMatrixRoundTrips) {
  const std::vector<double> matrix = {0, 1, 2,  //
                                      1, 0, 3,  //
                                      2, 3, 0};
  const DenseMetric m = DenseMetric::FromMatrix(3, matrix);
  EXPECT_DOUBLE_EQ(m.Distance(1, 2), 3.0);
}

TEST(DenseMetricTest, FromMatrixRejectsAsymmetry) {
  const std::vector<double> matrix = {0, 1, 2, 0};
  EXPECT_DEATH(DenseMetric::FromMatrix(2, matrix), "symmetric");
}

TEST(DenseMetricTest, MaterializeCopiesAnyMetric) {
  const EuclideanMetric base({{0.0, 0.0}, {3.0, 4.0}, {6.0, 8.0}});
  const DenseMetric dense = DenseMetric::Materialize(base);
  EXPECT_DOUBLE_EQ(dense.Distance(0, 1), 5.0);
  EXPECT_DOUBLE_EQ(dense.Distance(0, 2), 10.0);
  EXPECT_DOUBLE_EQ(dense.Distance(1, 2), 5.0);
}

TEST(EuclideanMetricTest, L1L2LInfDiffer) {
  const std::vector<std::vector<double>> pts = {{0.0, 0.0}, {3.0, 4.0}};
  EXPECT_DOUBLE_EQ(EuclideanMetric(pts, Norm::kL1).Distance(0, 1), 7.0);
  EXPECT_DOUBLE_EQ(EuclideanMetric(pts, Norm::kL2).Distance(0, 1), 5.0);
  EXPECT_DOUBLE_EQ(EuclideanMetric(pts, Norm::kLInf).Distance(0, 1), 4.0);
}

TEST(EuclideanMetricTest, AllNormsAreMetrics) {
  Rng rng(3);
  std::vector<std::vector<double>> pts(12, std::vector<double>(3));
  for (auto& p : pts) {
    for (double& x : p) x = rng.Uniform(-5.0, 5.0);
  }
  for (Norm norm : {Norm::kL1, Norm::kL2, Norm::kLInf}) {
    const EuclideanMetric m(pts, norm);
    EXPECT_TRUE(ValidateMetric(m).IsMetric());
  }
}

TEST(CosineMetricTest, IdenticalDirectionsHaveZeroDistance) {
  const CosineMetric m({{1.0, 0.0}, {2.0, 0.0}, {0.0, 1.0}});
  EXPECT_NEAR(m.Distance(0, 1), 0.0, 1e-12);
  EXPECT_NEAR(m.Distance(0, 2), 1.0, 1e-12);  // orthogonal: 1 - cos = 1
}

TEST(CosineMetricTest, AngularFormIsMetric) {
  Rng rng(5);
  std::vector<std::vector<double>> vecs(10, std::vector<double>(4));
  for (auto& v : vecs) {
    for (double& x : v) x = std::abs(rng.Gaussian()) + 0.01;
  }
  const CosineMetric m(vecs, CosineMetric::Form::kAngular);
  EXPECT_TRUE(ValidateMetric(m, 1e-9).IsMetric());
}

TEST(CosineMetricTest, SelfDistanceIsZero) {
  const CosineMetric m({{1.0, 2.0}, {2.0, 1.0}});
  EXPECT_DOUBLE_EQ(m.Distance(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(m.Distance(1, 1), 0.0);
}

TEST(RelaxedMetricTest, BetaOneIsIdentity) {
  Rng rng(1);
  Dataset data = MakeUniformSynthetic(8, rng);
  const PowerRelaxedMetric relaxed(&data.metric, 1.0);
  for (int u = 0; u < 8; ++u) {
    for (int v = 0; v < 8; ++v) {
      EXPECT_DOUBLE_EQ(relaxed.Distance(u, v), data.metric.Distance(u, v));
    }
  }
}

TEST(RelaxedMetricTest, LargerBetaRelaxesAlpha) {
  Rng rng(2);
  Dataset data = MakeUniformSynthetic(10, rng);
  const double alpha1 = ValidateMetric(data.metric).alpha;
  const PowerRelaxedMetric relaxed2(&data.metric, 2.0);
  const PowerRelaxedMetric relaxed3(&data.metric, 3.0);
  const double alpha2 = ValidateMetric(relaxed2).alpha;
  const double alpha3 = ValidateMetric(relaxed3).alpha;
  EXPECT_GE(alpha1, 1.0);  // base is a metric
  EXPECT_LT(alpha2, alpha1);
  EXPECT_LT(alpha3, alpha2);
  EXPECT_GT(alpha3, 0.0);
}

TEST(MetricUtilsTest, SumPairwiseSmallCases) {
  DenseMetric m(3);
  m.SetDistance(0, 1, 1.0);
  m.SetDistance(0, 2, 2.0);
  m.SetDistance(1, 2, 4.0);
  const std::vector<int> all = {0, 1, 2};
  const std::vector<int> pair = {0, 2};
  const std::vector<int> single = {1};
  EXPECT_DOUBLE_EQ(SumPairwise(m, all), 7.0);
  EXPECT_DOUBLE_EQ(SumPairwise(m, pair), 2.0);
  EXPECT_DOUBLE_EQ(SumPairwise(m, single), 0.0);
  EXPECT_DOUBLE_EQ(SumPairwise(m, std::vector<int>{}), 0.0);
}

TEST(MetricUtilsTest, SumBetweenAndSumTo) {
  DenseMetric m(4);
  m.SetDistance(0, 2, 1.0);
  m.SetDistance(0, 3, 2.0);
  m.SetDistance(1, 2, 3.0);
  m.SetDistance(1, 3, 4.0);
  const std::vector<int> a = {0, 1};
  const std::vector<int> b = {2, 3};
  EXPECT_DOUBLE_EQ(SumBetween(m, a, b), 10.0);
  EXPECT_DOUBLE_EQ(SumTo(m, 0, b), 3.0);
}

TEST(MetricUtilsTest, PartitionIdentity) {
  // d(A ∪ C) = d(A) + d(C) + d(A, C) — used implicitly throughout the
  // paper's proofs (equation (4)).
  Rng rng(17);
  Dataset data = MakeUniformSynthetic(12, rng);
  const std::vector<int> a = {0, 2, 4};
  const std::vector<int> c = {1, 3, 5, 7};
  std::vector<int> both = a;
  both.insert(both.end(), c.begin(), c.end());
  EXPECT_NEAR(SumPairwise(data.metric, both),
              SumPairwise(data.metric, a) + SumPairwise(data.metric, c) +
                  SumBetween(data.metric, a, c),
              1e-9);
}

TEST(MetricUtilsTest, DiameterAndAverage) {
  DenseMetric m(3);
  m.SetDistance(0, 1, 1.0);
  m.SetDistance(0, 2, 5.0);
  m.SetDistance(1, 2, 3.0);
  EXPECT_DOUBLE_EQ(Diameter(m), 5.0);
  EXPECT_DOUBLE_EQ(AverageDistance(m), 3.0);
}

TEST(MetricUtilsTest, AverageDistanceDegenerate) {
  DenseMetric m(1);
  EXPECT_DOUBLE_EQ(AverageDistance(m), 0.0);
  EXPECT_DOUBLE_EQ(Diameter(m), 0.0);
}

TEST(MetricValidationTest, AcceptsOneTwoMetric) {
  Rng rng(4);
  Dataset data = MakeUniformSynthetic(15, rng, 0.0, 1.0, 1.0, 2.0);
  const MetricReport report = ValidateMetric(data.metric);
  EXPECT_TRUE(report.IsMetric());
  EXPECT_GE(report.alpha, 1.0);
}

TEST(MetricValidationTest, DetectsTriangleViolation) {
  DenseMetric m(3);
  m.SetDistance(0, 1, 1.0);
  m.SetDistance(1, 2, 1.0);
  m.SetDistance(0, 2, 5.0);  // violates 5 <= 1 + 1
  const MetricReport report = ValidateMetric(m);
  EXPECT_FALSE(report.triangle_inequality);
  EXPECT_FALSE(report.IsMetric());
  EXPECT_NEAR(report.alpha, 2.0 / 5.0, 1e-12);
}

TEST(MetricValidationTest, SampledAgreesOnValidMetric) {
  Rng rng(6);
  Dataset data = MakeUniformSynthetic(30, rng);
  Rng check_rng(7);
  const MetricReport report =
      ValidateMetricSampled(data.metric, check_rng, 2000);
  EXPECT_TRUE(report.IsMetric());
}

// Lemma 1 of the paper (Ravi et al.): for a metric and disjoint X, Y,
// (|X| - 1) * d(X, Y) >= |Y| * d(X). Property-checked on random instances.
TEST(MetricValidationTest, Lemma1HoldsOnRandomInstances) {
  for (int trial = 0; trial < 30; ++trial) {
    Rng rng(100 + trial);
    Dataset data = MakeUniformSynthetic(14, rng);
    const int x_size = rng.UniformInt(2, 6);
    const int y_size = rng.UniformInt(1, 6);
    const auto sample =
        rng.SampleWithoutReplacement(data.size(), x_size + y_size);
    const std::vector<int> x(sample.begin(), sample.begin() + x_size);
    const std::vector<int> y(sample.begin() + x_size, sample.end());
    const double lhs = (x_size - 1) * SumBetween(data.metric, x, y);
    const double rhs = y_size * SumPairwise(data.metric, x);
    EXPECT_GE(lhs, rhs - 1e-9) << "trial " << trial;
  }
}

class OneTwoMetricSweep : public ::testing::TestWithParam<int> {};

TEST_P(OneTwoMetricSweep, GeneratedSpacesAreAlwaysMetric) {
  Rng rng(GetParam());
  Dataset data = MakeUniformSynthetic(12, rng);
  EXPECT_TRUE(ValidateMetric(data.metric).IsMetric());
}

INSTANTIATE_TEST_SUITE_P(Seeds, OneTwoMetricSweep,
                         ::testing::Range(1, 21));

}  // namespace
}  // namespace diverse
