#include "core/distance_cache.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "data/synthetic.h"
#include "metric/euclidean_metric.h"
#include "util/random.h"

namespace diverse {
namespace {

EuclideanMetric MakeRandomPoints(int n, int dim, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<double>> points(n, std::vector<double>(dim));
  for (auto& point : points) {
    for (double& x : point) x = rng.Uniform(0.0, 10.0);
  }
  return EuclideanMetric(std::move(points));
}

TEST(DistanceCacheTest, DenseModeAgreesWithRawMetric) {
  const EuclideanMetric base = MakeRandomPoints(40, 3, 1);
  const DistanceCache cache(&base);
  ASSERT_TRUE(cache.dense());
  EXPECT_EQ(cache.size(), 40);
  for (int u = 0; u < 40; ++u) {
    for (int v = 0; v < 40; ++v) {
      EXPECT_DOUBLE_EQ(cache.Distance(u, v), base.Distance(u, v))
          << "(" << u << ", " << v << ")";
    }
  }
}

TEST(DistanceCacheTest, DenseModeQueriesEachPairOnce) {
  const EuclideanMetric base = MakeRandomPoints(30, 2, 2);
  const DistanceCache cache(&base);
  const long long pairs = 30 * 29 / 2;
  EXPECT_EQ(cache.stats().base_distance_calls, pairs);
  // Lookups never go back to the base.
  for (int u = 0; u < 30; ++u) {
    for (int v = 0; v < 30; ++v) (void)cache.Distance(u, v);
  }
  EXPECT_EQ(cache.stats().base_distance_calls, pairs);
  EXPECT_EQ(cache.stats().lookups, 30 * 30);
}

TEST(DistanceCacheTest, LazyModeAgreesWithRawMetric) {
  const EuclideanMetric base = MakeRandomPoints(50, 3, 3);
  DistanceCache::Options options;
  options.dense_threshold = 10;  // force lazy rows
  const DistanceCache cache(&base, options);
  ASSERT_FALSE(cache.dense());
  for (int u = 0; u < 50; ++u) {
    for (int v = 0; v < 50; ++v) {
      EXPECT_DOUBLE_EQ(cache.Distance(u, v), base.Distance(u, v));
    }
  }
}

TEST(DistanceCacheTest, LazyModeMaterializesOnlyTouchedRows) {
  const EuclideanMetric base = MakeRandomPoints(64, 2, 4);
  DistanceCache::Options options;
  options.dense_threshold = 8;
  const DistanceCache cache(&base, options);
  EXPECT_EQ(cache.stats().rows_materialized, 0);
  (void)cache.Distance(5, 9);
  EXPECT_TRUE(cache.RowMaterialized(5));
  EXPECT_FALSE(cache.RowMaterialized(9));
  EXPECT_EQ(cache.stats().rows_materialized, 1);
  EXPECT_EQ(cache.stats().base_distance_calls, 64);
  // The mirrored entry is served from row 5 without building row 9.
  EXPECT_DOUBLE_EQ(cache.Distance(9, 5), base.Distance(9, 5));
  EXPECT_FALSE(cache.RowMaterialized(9));
  EXPECT_EQ(cache.stats().rows_materialized, 1);
}

TEST(DistanceCacheTest, LazyModeConcurrentReadersAgree) {
  const EuclideanMetric base = MakeRandomPoints(48, 3, 5);
  DistanceCache::Options options;
  options.dense_threshold = 4;
  const DistanceCache cache(&base, options);
  std::atomic<int> mismatches{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&, t] {
      for (int u = t; u < 48; u += 4) {
        for (int v = 0; v < 48; ++v) {
          if (cache.Distance(u, v) != base.Distance(u, v)) {
            mismatches.fetch_add(1);
          }
        }
      }
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(cache.stats().rows_materialized, 48);
}

TEST(DistanceCacheTest, RefreshPicksUpBaseMutation) {
  Rng rng(6);
  Dataset data = MakeUniformSynthetic(12, rng);
  DistanceCache cache(&data.metric);
  const double before = cache.Distance(2, 7);
  data.metric.SetDistance(2, 7, 1.75);
  EXPECT_DOUBLE_EQ(cache.Distance(2, 7), before);  // snapshot semantics
  cache.Refresh(2, 7);
  EXPECT_DOUBLE_EQ(cache.Distance(2, 7), 1.75);
  EXPECT_DOUBLE_EQ(cache.Distance(7, 2), 1.75);
}

TEST(DistanceCacheTest, InvalidateDropsEverything) {
  Rng rng(7);
  Dataset data = MakeUniformSynthetic(20, rng);
  // Exercise both modes.
  for (std::size_t threshold : {std::size_t{64}, std::size_t{4}}) {
    DistanceCache::Options options;
    options.dense_threshold = threshold;
    DistanceCache cache(&data.metric, options);
    (void)cache.Distance(1, 2);
    data.metric.SetDistance(1, 2, 1.5);
    data.metric.SetDistance(3, 4, 1.25);
    cache.Invalidate();
    EXPECT_DOUBLE_EQ(cache.Distance(1, 2), 1.5);
    EXPECT_DOUBLE_EQ(cache.Distance(3, 4), 1.25);
    data.metric.SetDistance(1, 2, 1.9);  // restore-ish for next loop
  }
}

TEST(DistanceCacheTest, ZeroDiagonal) {
  const EuclideanMetric base = MakeRandomPoints(10, 2, 8);
  const DistanceCache cache(&base);
  for (int u = 0; u < 10; ++u) EXPECT_DOUBLE_EQ(cache.Distance(u, u), 0.0);
}

TEST(DistanceCacheTest, RefreshManyAppliesBatchAndBumpsVersionOnce) {
  Rng rng(9);
  Dataset data = MakeUniformSynthetic(12, rng);
  DistanceCache cache(&data.metric);
  EXPECT_EQ(cache.version(), 0u);
  data.metric.SetDistance(1, 4, 1.9);
  data.metric.SetDistance(2, 5, 1.1);
  const std::vector<std::pair<int, int>> pairs = {{1, 4}, {2, 5}};
  cache.RefreshMany(pairs);
  EXPECT_EQ(cache.version(), 1u);  // one epoch, one bump
  EXPECT_DOUBLE_EQ(cache.Distance(1, 4), 1.9);
  EXPECT_DOUBLE_EQ(cache.Distance(5, 2), 1.1);
  cache.Refresh(1, 4);
  EXPECT_EQ(cache.version(), 2u);
  cache.Invalidate();
  EXPECT_EQ(cache.version(), 3u);
}

}  // namespace
}  // namespace diverse
