// Boundary conditions and contract-violation (failure-injection) tests
// across the public API: empty universes, singleton universes, p = 0,
// degenerate metrics, and the death paths of every precondition check.
#include <gtest/gtest.h>

#include <vector>

#include "algorithms/brute_force.h"
#include "algorithms/greedy_edge.h"
#include "algorithms/greedy_vertex.h"
#include "algorithms/local_search.h"
#include "algorithms/matching.h"
#include "algorithms/streaming.h"
#include "core/diversification_problem.h"
#include "core/solution_state.h"
#include "data/synthetic.h"
#include "matroid/matroid.h"
#include "matroid/partition_matroid.h"
#include "matroid/uniform_matroid.h"
#include "metric/dense_metric.h"
#include "submodular/modular_function.h"
#include "submodular/set_function.h"
#include "util/random.h"

namespace diverse {
namespace {

TEST(EdgeCasesTest, SingletonUniverse) {
  DenseMetric metric(1);
  const ModularFunction weights({0.7});
  const DiversificationProblem problem(&metric, &weights, 0.2);
  const AlgorithmResult greedy = GreedyVertex(problem, {.p = 1});
  EXPECT_EQ(greedy.elements, (std::vector<int>{0}));
  EXPECT_DOUBLE_EQ(greedy.objective, 0.7);
  const AlgorithmResult opt = BruteForceCardinality(problem, {.p = 1});
  EXPECT_DOUBLE_EQ(opt.objective, 0.7);
}

TEST(EdgeCasesTest, PZeroEverywhere) {
  Rng rng(1);
  Dataset data = MakeUniformSynthetic(6, rng);
  const ModularFunction weights(data.weights);
  const DiversificationProblem problem(&data.metric, &weights, 0.2);
  EXPECT_TRUE(GreedyVertex(problem, {.p = 0}).elements.empty());
  EXPECT_TRUE(GreedyEdge(problem, weights, {.p = 0}).elements.empty());
  EXPECT_TRUE(BruteForceCardinality(problem, {.p = 0}).elements.empty());
  const UniformMatroid empty_matroid(6, 0);
  EXPECT_TRUE(LocalSearch(problem, empty_matroid, {}).elements.empty());
}

TEST(EdgeCasesTest, AllZeroDistancesDegenerateMetric) {
  // A pseudo-metric where everything coincides: algorithms reduce to pure
  // quality maximization.
  DenseMetric metric(5);
  const ModularFunction weights({0.1, 0.9, 0.3, 0.7, 0.5});
  const DiversificationProblem problem(&metric, &weights, 1.0);
  const AlgorithmResult greedy = GreedyVertex(problem, {.p = 2});
  EXPECT_NEAR(greedy.objective, 1.6, 1e-12);  // picks 0.9 and 0.7
}

TEST(EdgeCasesTest, AllZeroWeights) {
  Rng rng(2);
  Dataset data = MakeUniformSynthetic(8, rng);
  const ModularFunction weights(std::vector<double>(8, 0.0));
  const DiversificationProblem problem(&data.metric, &weights, 0.5);
  const AlgorithmResult greedy = GreedyVertex(problem, {.p = 3});
  EXPECT_EQ(greedy.elements.size(), 3u);
  EXPECT_GT(greedy.objective, 0.0);  // dispersion only
}

TEST(EdgeCasesTest, LambdaZeroTiesBrokenDeterministically) {
  DenseMetric metric(4);
  const ModularFunction weights({0.5, 0.5, 0.5, 0.5});
  const DiversificationProblem problem(&metric, &weights, 0.0);
  const AlgorithmResult a = GreedyVertex(problem, {.p = 2});
  const AlgorithmResult b = GreedyVertex(problem, {.p = 2});
  EXPECT_EQ(a.elements, b.elements);  // deterministic tie-breaking
}

TEST(EdgeCasesTest, RankOneMatroidLocalSearch) {
  Rng rng(3);
  Dataset data = MakeUniformSynthetic(6, rng);
  const ModularFunction weights(data.weights);
  const DiversificationProblem problem(&data.metric, &weights, 0.2);
  const UniformMatroid matroid(6, 1);
  const AlgorithmResult ls = LocalSearch(problem, matroid, {});
  ASSERT_EQ(ls.elements.size(), 1u);
  // Rank 1: the best singleton is optimal.
  const AlgorithmResult opt = BruteForceMatroid(problem, matroid);
  EXPECT_NEAR(ls.objective, opt.objective, 1e-12);
}

TEST(EdgeCasesTest, MatroidWithDependentElements) {
  // Elements in a zero-capacity block can never be chosen.
  Rng rng(4);
  Dataset data = MakeUniformSynthetic(6, rng);
  const ModularFunction weights(data.weights);
  const DiversificationProblem problem(&data.metric, &weights, 0.2);
  const PartitionMatroid matroid({0, 0, 0, 1, 1, 1}, {0, 2});
  const AlgorithmResult ls = LocalSearch(problem, matroid, {});
  for (int e : ls.elements) EXPECT_GE(e, 3);
  EXPECT_EQ(static_cast<int>(ls.elements.size()), 2);
}

TEST(EdgeCasesDeathTest, SolutionStateContractViolations) {
  Rng rng(5);
  Dataset data = MakeUniformSynthetic(5, rng);
  const ModularFunction weights(data.weights);
  const DiversificationProblem problem(&data.metric, &weights, 0.2);
  SolutionState state(&problem);
  state.Add(2);
  EXPECT_DEATH(state.Add(2), "already in S");
  EXPECT_DEATH(state.Remove(4), "not in S");
  EXPECT_DEATH(state.Add(7), "");  // out of range
}

TEST(EdgeCasesDeathTest, NegativeLambdaRejected) {
  DenseMetric metric(3);
  const ModularFunction weights({1.0, 1.0, 1.0});
  EXPECT_DEATH(DiversificationProblem(&metric, &weights, -0.5),
               "non-negative");
}

TEST(EdgeCasesDeathTest, GreedyEdgeRequiresMatchingQualityFunction) {
  Rng rng(6);
  Dataset data = MakeUniformSynthetic(5, rng);
  const ModularFunction weights(data.weights);
  const ModularFunction other(data.weights);
  const DiversificationProblem problem(&data.metric, &weights, 0.2);
  EXPECT_DEATH(GreedyEdge(problem, other, {.p = 2}), "quality function");
}

TEST(EdgeCasesDeathTest, LocalSearchRejectsDependentInitialSet) {
  Rng rng(7);
  Dataset data = MakeUniformSynthetic(6, rng);
  const ModularFunction weights(data.weights);
  const DiversificationProblem problem(&data.metric, &weights, 0.2);
  const UniformMatroid matroid(6, 2);
  LocalSearchOptions options;
  options.initial = {0, 1, 2};  // size 3 > rank 2
  EXPECT_DEATH(LocalSearch(problem, matroid, options), "independent");
}

TEST(EdgeCasesDeathTest, StreamRejectsDuplicateObservation) {
  Rng rng(8);
  Dataset data = MakeUniformSynthetic(5, rng);
  const ModularFunction weights(data.weights);
  const DiversificationProblem problem(&data.metric, &weights, 0.2);
  StreamingDiversifier stream(&problem, 3);
  stream.Observe(1);
  EXPECT_DEATH(stream.Observe(1), "twice");
}

TEST(EdgeCasesDeathTest, MatchingSizeLimits) {
  const std::vector<double> w(25 * 25, 1.0);
  EXPECT_DEATH(MaxWeightMatchingExact(25, w, 2), "n <= 20");
  const std::vector<double> small(16, 1.0);
  EXPECT_DEATH(MaxWeightMatchingExact(4, small, 3), "");  // 2k > n
}

TEST(EdgeCasesDeathTest, DenseMetricValidation) {
  DenseMetric m(3);
  EXPECT_DEATH(m.SetDistance(0, 0, 1.0), "");
  EXPECT_DEATH(m.SetDistance(0, 1, -1.0), "");
  EXPECT_DEATH(m.SetDistance(0, 5, 1.0), "");
}

TEST(EdgeCasesTest, LargePGreedyEdgeOddEven) {
  // p == n odd/even paths through the final-vertex logic.
  Rng rng(9);
  for (int n : {5, 6}) {
    Dataset data = MakeUniformSynthetic(n, rng);
    const ModularFunction weights(data.weights);
    const DiversificationProblem problem(&data.metric, &weights, 0.2);
    const AlgorithmResult result = GreedyEdge(problem, weights, {.p = n});
    EXPECT_EQ(static_cast<int>(result.elements.size()), n);
  }
}

TEST(EdgeCasesTest, SolutionStateClear) {
  Rng rng(10);
  Dataset data = MakeUniformSynthetic(6, rng);
  const ModularFunction weights(data.weights);
  const DiversificationProblem problem(&data.metric, &weights, 0.2);
  SolutionState state(&problem);
  state.Add(0);
  state.Add(3);
  state.Clear();
  EXPECT_EQ(state.size(), 0);
  EXPECT_DOUBLE_EQ(state.objective(), 0.0);
  for (int v = 0; v < 6; ++v) EXPECT_DOUBLE_EQ(state.DistanceToSet(v), 0.0);
}

}  // namespace
}  // namespace diverse
