// Tests for the (p, k) disjoint-group diversification (paper §2/§3's HRT
// generalization).
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "algorithms/group_diversification.h"
#include "core/diversification_problem.h"
#include "data/synthetic.h"
#include "submodular/modular_function.h"
#include "util/random.h"

namespace diverse {
namespace {

struct Fixture {
  Dataset data;
  ModularFunction weights;
  DiversificationProblem problem;

  Fixture(int n, double lambda, Rng& rng)
      : data(MakeUniformSynthetic(n, rng)),
        weights(data.weights),
        problem(&data.metric, &weights, lambda) {}
};

TEST(GroupGreedyTest, GroupsAreDisjointAndSizedP) {
  Rng rng(1);
  Fixture fx(20, 0.2, rng);
  const GroupResult result = GroupGreedy(fx.problem, {.p = 4, .k = 3});
  ASSERT_EQ(result.groups.size(), 3u);
  std::set<int> all;
  for (const auto& g : result.groups) {
    EXPECT_EQ(g.size(), 4u);
    for (int e : g) {
      EXPECT_TRUE(all.insert(e).second) << "element " << e << " reused";
    }
  }
  EXPECT_EQ(all.size(), 12u);
  EXPECT_NEAR(result.objective, GroupObjective(fx.problem, result.groups),
              1e-9);
}

TEST(GroupGreedyTest, KOneMatchesSingleGroupObjective) {
  Rng rng(2);
  Fixture fx(15, 0.2, rng);
  const GroupResult grouped = GroupGreedy(fx.problem, {.p = 5, .k = 1});
  ASSERT_EQ(grouped.groups.size(), 1u);
  EXPECT_NEAR(grouped.objective,
              fx.problem.Objective(grouped.groups[0]), 1e-9);
}

TEST(GroupGreedyTest, PZero) {
  Rng rng(3);
  Fixture fx(8, 0.2, rng);
  const GroupResult result = GroupGreedy(fx.problem, {.p = 0, .k = 2});
  EXPECT_DOUBLE_EQ(result.objective, 0.0);
  for (const auto& g : result.groups) EXPECT_TRUE(g.empty());
}

TEST(GroupGreedyTest, RejectsOverfullRequest) {
  Rng rng(4);
  Fixture fx(5, 0.2, rng);
  EXPECT_DEATH(GroupGreedy(fx.problem, {.p = 3, .k = 2}), "k\\*p");
}

TEST(GroupBruteForceTest, FindsBetterOrEqualGroupings) {
  for (int seed = 1; seed <= 6; ++seed) {
    Rng rng(seed * 29);
    Fixture fx(10, 0.2, rng);
    const GroupOptions options{.p = 3, .k = 2};
    const GroupResult greedy = GroupGreedy(fx.problem, options);
    const GroupResult exact = GroupBruteForce(fx.problem, options);
    EXPECT_GE(exact.objective + 1e-9, greedy.objective) << seed;
    // Round-robin potential greedy should stay within the HRT-style factor
    // 2 of optimal on random instances.
    EXPECT_GE(greedy.objective * 2.0 + 1e-9, exact.objective) << seed;
  }
}

TEST(GroupBruteForceTest, ExactGroupsAreValid) {
  Rng rng(7);
  Fixture fx(9, 0.3, rng);
  const GroupResult exact = GroupBruteForce(fx.problem, {.p = 2, .k = 3});
  std::set<int> all;
  for (const auto& g : exact.groups) {
    EXPECT_EQ(g.size(), 2u);
    for (int e : g) EXPECT_TRUE(all.insert(e).second);
  }
  EXPECT_NEAR(exact.objective, GroupObjective(fx.problem, exact.groups),
              1e-9);
}

TEST(GroupBruteForceTest, KOneMatchesCardinalityOptimum) {
  Rng rng(8);
  Fixture fx(9, 0.2, rng);
  const GroupResult exact = GroupBruteForce(fx.problem, {.p = 4, .k = 1});
  // Cross-check against the cardinality brute force through the public
  // objective (same optimum by definition).
  double best = 0.0;
  std::vector<bool> pick(9, false);
  std::fill(pick.begin(), pick.begin() + 4, true);
  do {
    std::vector<int> s;
    for (int i = 0; i < 9; ++i) {
      if (pick[i]) s.push_back(i);
    }
    best = std::max(best, fx.problem.Objective(s));
  } while (std::prev_permutation(pick.begin(), pick.end()));
  EXPECT_NEAR(exact.objective, best, 1e-9);
}

}  // namespace
}  // namespace diverse
