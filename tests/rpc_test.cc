// End-to-end tests for the cross-node RPC sharding layer (src/rpc/):
// coordinator answers must be bit-equal to the in-process sharded plan at
// the same snapshot version — over InProcessTransport and loopback
// SocketTransport, through replica-sync epochs, query-time catch-up of
// lagging replicas, killed nodes (both failure policies), concurrent
// corpus updates, and across engine worker-pool sizes.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <future>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "data/synthetic.h"
#include "engine/engine.h"
#include "engine/execution_plan.h"
#include "engine/workload.h"
#include "rpc/coordinator.h"
#include "rpc/shard_node.h"
#include "rpc/socket_transport.h"
#include "rpc/transport.h"
#include "rpc/wire.h"
#include "snapshot/checkpoint_store.h"
#include "snapshot/snapshot_codec.h"
#include "util/random.h"

namespace diverse {
namespace rpc {
namespace {

using engine::CorpusUpdate;
using engine::DiversificationEngine;
using engine::PlanKind;
using engine::Query;
using engine::QueryResult;

// One corpus served three ways: the engine (coordinator side), and
// `num_nodes` ShardNode replicas behind InProcessTransports.
struct RemoteCluster {
  std::vector<std::unique_ptr<ShardNode>> nodes;
  std::vector<std::unique_ptr<InProcessTransport>> transports;
  std::unique_ptr<Coordinator> coordinator;
  std::unique_ptr<DiversificationEngine> engine;

  std::uint64_t ApplyAndPublish(const std::vector<CorpusUpdate>& updates) {
    const std::uint64_t version = engine->ApplyUpdates(updates);
    coordinator->PublishEpoch(version, updates);
    return version;
  }
};

RemoteCluster MakeCluster(
    int n, int num_nodes, std::uint64_t seed, double lambda,
    Coordinator::Options coordinator_options = {},
    DiversificationEngine::Options engine_options = {}) {
  Rng rng(seed);
  const Dataset data = MakeUniformSynthetic(n, rng);
  RemoteCluster cluster;
  std::vector<Transport*> raw;
  for (int i = 0; i < num_nodes; ++i) {
    Dataset replica = data;
    cluster.nodes.push_back(std::make_unique<ShardNode>(
        replica.weights, std::move(replica.metric), lambda));
    cluster.transports.push_back(
        std::make_unique<InProcessTransport>(cluster.nodes.back().get()));
    raw.push_back(cluster.transports.back().get());
  }
  cluster.coordinator =
      std::make_unique<Coordinator>(raw, coordinator_options);
  engine_options.remote = cluster.coordinator.get();
  Dataset mine = data;
  cluster.engine = std::make_unique<DiversificationEngine>(
      mine.weights, std::move(mine.metric), lambda, engine_options);
  return cluster;
}

Query MakeQuery(int universe, int p, int num_shards, std::uint64_t salt,
                Rng& rng, bool remote = true) {
  engine::SyntheticQueryConfig config;
  config.p = p;
  config.universe = universe;
  config.sharded = true;
  config.remote = remote;
  config.num_shards = num_shards;
  Query query = engine::MakeSyntheticQuery(config, rng);
  query.shard_salt = salt;
  return query;
}

// The acceptance assertion: remote and in-process sharded answers on the
// same snapshot must agree bitwise (elements, objective, steps, version).
void ExpectBitEqual(DiversificationEngine& engine, const Query& remote) {
  const QueryResult remote_result = engine.RunSync(remote);
  Query local = remote;
  local.plan = PlanKind::kSharded;
  const QueryResult local_result = engine.RunSync(local);
  EXPECT_TRUE(remote_result.ok);
  EXPECT_EQ(remote_result.corpus_version, local_result.corpus_version);
  EXPECT_EQ(remote_result.elements, local_result.elements);
  EXPECT_EQ(remote_result.objective, local_result.objective);
  EXPECT_EQ(remote_result.steps, local_result.steps);
}

TEST(RpcTest, CoordinatorBitEqualToInProcessSharded) {
  RemoteCluster cluster = MakeCluster(80, 3, 1, 0.3);
  Rng rng(2);
  // Shard counts below, at, and above the node count; varying salts and
  // per-query relevance draws.
  for (int num_shards : {1, 2, 3, 4, 8}) {
    for (int q = 0; q < 4; ++q) {
      ExpectBitEqual(*cluster.engine,
                     MakeQuery(80, 9, num_shards, rng.NextSeed(), rng));
    }
  }
  const Coordinator::Stats stats = cluster.coordinator->stats();
  EXPECT_GT(stats.remote_shards, 0);
  EXPECT_EQ(stats.local_fallbacks, 0);
  EXPECT_EQ(stats.failed_queries, 0);
}

TEST(RpcTest, PerShardAndLambdaOverridesStayBitEqual) {
  RemoteCluster cluster = MakeCluster(60, 2, 3, 0.25);
  Rng rng(4);
  Query query = MakeQuery(60, 8, 4, 77, rng);
  query.per_shard = 12;  // per-shard yield larger than p
  query.lambda = 0.9;
  ExpectBitEqual(*cluster.engine, query);
  query.per_shard = 3;  // smaller than p
  ExpectBitEqual(*cluster.engine, query);
  query.relevance.clear();  // corpus weights, corpus lambda
  query.lambda = -1.0;
  ExpectBitEqual(*cluster.engine, query);
}

TEST(RpcTest, ReplicasApplyEpochsInVersionOrder) {
  RemoteCluster cluster = MakeCluster(50, 2, 5, 0.3);
  Rng rng(6);
  for (int epoch = 0; epoch < 6; ++epoch) {
    const int universe =
        cluster.engine->corpus().snapshot()->universe_size();
    const std::uint64_t version = cluster.ApplyAndPublish(
        engine::MakeSyntheticEpoch(universe, /*churn=*/true, epoch, rng));
    EXPECT_EQ(version, static_cast<std::uint64_t>(epoch + 1));
    for (const auto& node : cluster.nodes) {
      EXPECT_EQ(node->version(), version);
    }
    const int new_universe =
        cluster.engine->corpus().snapshot()->universe_size();
    ExpectBitEqual(*cluster.engine,
                   MakeQuery(new_universe, 7, 4, rng.NextSeed(), rng));
  }
}

TEST(RpcTest, LaggingReplicaCaughtUpProactivelyWithoutMismatchRoundTrip) {
  RemoteCluster cluster = MakeCluster(50, 2, 7, 0.3);
  Rng rng(8);
  // Node 1 misses three epochs; the coordinator's per-node tracking saw
  // the failed publishes, so it knows the replica is behind.
  cluster.transports[1]->set_down(true);
  for (int epoch = 0; epoch < 3; ++epoch) {
    cluster.ApplyAndPublish(
        engine::MakeSyntheticEpoch(50, /*churn=*/false, epoch, rng));
  }
  EXPECT_EQ(cluster.nodes[0]->version(), 3u);
  EXPECT_EQ(cluster.nodes[1]->version(), 0u);

  cluster.transports[1]->set_down(false);
  ExpectBitEqual(*cluster.engine, MakeQuery(50, 6, 4, 99, rng));
  // The stale replica was caught up by replaying the missed epochs
  // BEFORE the kernel request went out (tracked version, no
  // kVersionMismatch round-trip), and then served its shards remotely.
  EXPECT_EQ(cluster.nodes[1]->version(), 3u);
  const Coordinator::Stats stats = cluster.coordinator->stats();
  EXPECT_GT(stats.proactive_catchups, 0);
  EXPECT_EQ(stats.version_mismatches, 0);
  EXPECT_EQ(cluster.nodes[1]->stats().version_mismatches, 0);
  EXPECT_GT(stats.catchup_batches, 0);
  EXPECT_EQ(stats.local_fallbacks, 0);
}

// The reactive mismatch path remains the backstop when the tracking is
// stale: a silently restarted replica (fresh version-0 process behind the
// same address) corrects the tracking on first contact.
TEST(RpcTest, StaleTrackingFallsBackToMismatchRoundTrip) {
  RemoteCluster cluster = MakeCluster(40, 1, 27, 0.3);
  Rng rng(28);
  for (int epoch = 0; epoch < 2; ++epoch) {
    cluster.ApplyAndPublish(
        engine::MakeSyntheticEpoch(40, /*churn=*/false, epoch, rng));
  }
  EXPECT_EQ(cluster.nodes[0]->version(), 2u);
  // "Restart" the node: same baseline (same seed as MakeCluster), fresh
  // version-0 replica. The coordinator still tracks it at version 2.
  Rng baseline_rng(27);
  Dataset data = MakeUniformSynthetic(40, baseline_rng);
  ShardNode restarted(data.weights, std::move(data.metric), 0.3);
  cluster.transports[0]->set_node(&restarted);

  ExpectBitEqual(*cluster.engine, MakeQuery(40, 6, 4, 77, rng));
  EXPECT_EQ(restarted.version(), 2u);
  const Coordinator::Stats stats = cluster.coordinator->stats();
  EXPECT_GT(stats.version_mismatches, 0);
  EXPECT_GT(stats.catchup_batches, 0);
  EXPECT_EQ(stats.local_fallbacks, 0);
}

TEST(RpcTest, ProactiveResyncOnPublish) {
  RemoteCluster cluster = MakeCluster(40, 2, 9, 0.3);
  Rng rng(10);
  cluster.transports[1]->set_down(true);
  cluster.ApplyAndPublish(
      engine::MakeSyntheticEpoch(40, /*churn=*/false, 0, rng));
  cluster.ApplyAndPublish(
      engine::MakeSyntheticEpoch(40, /*churn=*/false, 1, rng));
  cluster.transports[1]->set_down(false);
  // The next publish finds node 1 at version 0 (mismatch ack) and replays
  // the whole missing suffix off the query path.
  cluster.ApplyAndPublish(
      engine::MakeSyntheticEpoch(40, /*churn=*/false, 2, rng));
  EXPECT_EQ(cluster.nodes[1]->version(), 3u);
  EXPECT_GT(cluster.coordinator->stats().catchup_batches, 0);
}

// Two updater threads racing ApplyUpdates + PublishEpoch: the log slots
// epochs by the version Corpus::Apply actually assigned, so a publish
// that loses the race cannot land its epoch at the wrong replay index.
// If the log ever reordered, replicas would reach a version whose
// content differs from the coordinator's and the bit-equality check
// below would fail.
TEST(RpcTest, ConcurrentPublishersKeepLogInVersionOrder) {
  RemoteCluster cluster = MakeCluster(50, 2, 23, 0.3);
  auto updater = [&cluster](std::uint64_t seed) {
    Rng rng(seed);
    for (int e = 0; e < 8; ++e) {
      cluster.ApplyAndPublish(
          engine::MakeSyntheticEpoch(50, /*churn=*/false, e, rng));
    }
  };
  std::thread a(updater, 24);
  std::thread b(updater, 25);
  a.join();
  b.join();
  EXPECT_EQ(cluster.engine->corpus().version(), 16u);
  EXPECT_EQ(cluster.coordinator->published_version(), 16u);
  Rng qrng(26);
  ExpectBitEqual(*cluster.engine, MakeQuery(50, 7, 4, 31, qrng));
  // Query-time catch-up converged any replica that missed racing pushes.
  for (const auto& node : cluster.nodes) {
    EXPECT_EQ(node->version(), 16u);
  }
}

TEST(RpcTest, KilledNodeFallsBackLocallyBitEqual) {
  RemoteCluster cluster = MakeCluster(60, 2, 11, 0.3);
  Rng rng(12);
  cluster.transports[0]->set_down(true);  // killed for good
  for (int q = 0; q < 3; ++q) {
    ExpectBitEqual(*cluster.engine,
                   MakeQuery(60, 8, 4, rng.NextSeed(), rng));
  }
  const Coordinator::Stats stats = cluster.coordinator->stats();
  EXPECT_GT(stats.local_fallbacks, 0);
  EXPECT_GT(stats.remote_shards, 0);  // the healthy node kept serving
  EXPECT_EQ(stats.failed_queries, 0);
}

TEST(RpcTest, KilledNodeFailPolicyReportsFailure) {
  Coordinator::Options options;
  options.on_unreachable = Coordinator::FailurePolicy::kFail;
  RemoteCluster cluster = MakeCluster(40, 2, 13, 0.3, options);
  Rng rng(14);
  const Query query = MakeQuery(40, 6, 4, 5, rng);
  ExpectBitEqual(*cluster.engine, query);  // healthy: still bit-equal
  cluster.transports[1]->set_down(true);
  const QueryResult failed = cluster.engine->RunSync(query);
  EXPECT_FALSE(failed.ok);
  EXPECT_TRUE(failed.elements.empty());
  EXPECT_GT(cluster.coordinator->stats().failed_queries, 0);
}

// A node that answers with bytes that decode but are not a solution its
// shard could produce (wrong shard's ids) is treated as failed, and the
// fallback keeps the answer bit-equal.
class CorruptingTransport : public Transport {
 public:
  explicit CorruptingTransport(ShardNode* node) : node_(node) {}
  bool Call(const std::vector<std::uint8_t>& request,
            std::vector<std::uint8_t>* response) override {
    *response = node_->Handle(request);
    ShardQueryResponse decoded;
    if (Decode(*response, &decoded) &&
        decoded.status == RpcStatus::kOk) {
      decoded.elements.assign(1, 0);  // id 0 rarely hashes to every shard
      decoded.elements.push_back(0);  // and duplicates are never valid
      *response = Encode(decoded);
    }
    return true;
  }

 private:
  ShardNode* node_;
};

TEST(RpcTest, MisbehavingNodeTriggersFallback) {
  Rng rng(15);
  Dataset data = MakeUniformSynthetic(50, rng);
  Dataset replica = data;
  ShardNode node(replica.weights, std::move(replica.metric), 0.3);
  CorruptingTransport transport(&node);
  Coordinator coordinator({&transport});
  DiversificationEngine::Options options;
  options.remote = &coordinator;
  options.num_workers = 1;
  DiversificationEngine engine(data.weights, std::move(data.metric), 0.3,
                               options);
  Rng qrng(16);
  ExpectBitEqual(engine, MakeQuery(50, 7, 4, 21, qrng));
  EXPECT_GT(coordinator.stats().local_fallbacks, 0);
}

// Pooled remote queries racing an updater thread: every result must be
// exactly the in-process sharded answer at the snapshot version it
// reports (snapshot isolation + purity, now across the RPC boundary).
TEST(RpcTest, ConcurrentUpdatesStaySnapshotConsistent) {
  DiversificationEngine::Options engine_options;
  engine_options.num_workers = 3;
  engine_options.max_batch = 2;
  RemoteCluster cluster = MakeCluster(60, 2, 17, 0.3, {}, engine_options);
  Rng rng(18);

  std::map<std::uint64_t, engine::SnapshotPtr> snapshots;
  snapshots[0] = cluster.engine->corpus().snapshot();

  std::vector<Query> queries;
  std::vector<std::future<QueryResult>> futures;
  for (int i = 0; i < 30; ++i) {
    if (i % 5 == 0) {
      const std::uint64_t version = cluster.ApplyAndPublish(
          engine::MakeSyntheticEpoch(60, /*churn=*/false, i / 5, rng));
      snapshots[version] = cluster.engine->corpus().snapshot();
    }
    queries.push_back(MakeQuery(60, 8, 4, rng.NextSeed(), rng));
    futures.push_back(cluster.engine->Submit(queries.back()));
  }
  for (std::size_t i = 0; i < futures.size(); ++i) {
    const QueryResult result = futures[i].get();
    ASSERT_TRUE(result.ok);
    ASSERT_TRUE(snapshots.count(result.corpus_version));
    Query local = queries[i];
    local.plan = PlanKind::kSharded;
    const QueryResult reference = engine::ExecuteQuery(
        *snapshots[result.corpus_version], local, engine::PlanDefaults{});
    EXPECT_EQ(result.elements, reference.elements);
    EXPECT_EQ(result.objective, reference.objective);
  }
}

// Satellite: the sharded plans are a pure function of (snapshot, query) —
// identical answers across worker-pool sizes, per plan, for a fixed salt.
TEST(RpcTest, ShardedPlansDeterministicAcrossWorkerCounts) {
  for (const bool remote : {false, true}) {
    std::vector<int> reference;
    double reference_objective = 0.0;
    for (const int workers : {1, 2, 4}) {
      DiversificationEngine::Options engine_options;
      engine_options.num_workers = workers;
      RemoteCluster cluster =
          MakeCluster(70, 2, /*seed=*/19, 0.3, {}, engine_options);
      Rng rng(20);  // same trace per pool size
      Query query = MakeQuery(70, 9, 4, /*salt=*/1234, rng, remote);
      const QueryResult result = cluster.engine->Submit(query).get();
      if (workers == 1) {
        reference = result.elements;
        reference_objective = result.objective;
        EXPECT_FALSE(reference.empty());
      } else {
        EXPECT_EQ(result.elements, reference);
        EXPECT_EQ(result.objective, reference_objective);
      }
    }
  }
}

// Compaction + bootstrap: after the epoch log is truncated below what a
// cold node would need, the node is imaged by snapshot transfer, then
// joins ordinary epoch replay — and every answer stays bit-equal.
TEST(RpcTest, CompactedLogBootstrapsEmptyNodeViaSnapshotTransfer) {
  RemoteCluster cluster = MakeCluster(45, 2, 33, 0.3);
  Rng rng(34);
  for (int epoch = 0; epoch < 3; ++epoch) {
    cluster.ApplyAndPublish(engine::MakeSyntheticEpoch(
        cluster.engine->corpus().snapshot()->universe_size(),
        /*churn=*/true, epoch, rng));
  }
  // Both replicas acked version 3: compaction truncates the whole log
  // into the retained image.
  cluster.coordinator->CompactLog(*cluster.engine->corpus().snapshot());
  EXPECT_EQ(cluster.coordinator->log_start(), 3u);
  EXPECT_EQ(cluster.coordinator->retained_snapshot_version(), 3u);
  EXPECT_EQ(cluster.coordinator->published_version(), 3u);

  // Node 1 dies and comes back EMPTY — no baseline, no checkpoint. The
  // truncated log could never replay it back; only the snapshot can.
  ShardNode empty_node;
  EXPECT_TRUE(empty_node.awaiting_bootstrap());
  cluster.transports[1]->set_node(&empty_node);

  const int universe = cluster.engine->corpus().snapshot()->universe_size();
  ExpectBitEqual(*cluster.engine,
                 MakeQuery(universe, 7, 4, rng.NextSeed(), rng));
  EXPECT_FALSE(empty_node.awaiting_bootstrap());
  EXPECT_EQ(empty_node.version(), 3u);
  EXPECT_EQ(empty_node.stats().snapshots_installed, 1);
  const Coordinator::Stats stats = cluster.coordinator->stats();
  EXPECT_GT(stats.snapshots_sent, 0);
  EXPECT_EQ(stats.local_fallbacks, 0);

  // Subsequent epochs reach the bootstrapped node as ordinary replay.
  cluster.ApplyAndPublish(engine::MakeSyntheticEpoch(
      cluster.engine->corpus().snapshot()->universe_size(),
      /*churn=*/true, 9, rng));
  EXPECT_EQ(empty_node.version(), 4u);
  ExpectBitEqual(*cluster.engine,
                 MakeQuery(cluster.engine->corpus().snapshot()
                               ->universe_size(),
                           7, 4, rng.NextSeed(), rng));
}

// The ISSUE acceptance cycle: a node checkpoints itself, is killed, is
// restarted FROM ITS CHECKPOINT (not the baseline), catches up on the
// epochs it missed — here from a log compacted exactly down to its acked
// version — and answers stay bit-equal throughout.
TEST(RpcTest, KilledNodeRestartsFromCheckpointAndStaysBitEqual) {
  const std::string dir =
      (std::filesystem::path(testing::TempDir()) / "rpc_ckpt").string();
  std::filesystem::remove_all(dir);
  snapshot::CheckpointStore store(dir);
  ShardNode::Options node_options;
  node_options.checkpoint = &store;
  node_options.checkpoint_every = 1;

  Rng rng(35);
  const Dataset data = MakeUniformSynthetic(40, rng);
  Dataset replica = data;
  auto node = std::make_unique<ShardNode>(
      replica.weights, std::move(replica.metric), 0.3, node_options);
  InProcessTransport transport(node.get());
  Coordinator coordinator({&transport});
  DiversificationEngine::Options engine_options;
  engine_options.remote = &coordinator;
  engine_options.num_workers = 1;
  Dataset mine = data;
  DiversificationEngine engine(mine.weights, std::move(mine.metric), 0.3,
                               engine_options);
  auto publish = [&](int epoch) {
    const std::vector<CorpusUpdate> updates = engine::MakeSyntheticEpoch(
        engine.corpus().snapshot()->universe_size(), /*churn=*/true, epoch,
        rng);
    coordinator.PublishEpoch(engine.ApplyUpdates(updates), updates);
  };

  for (int epoch = 0; epoch < 4; ++epoch) publish(epoch);
  EXPECT_EQ(node->version(), 4u);
  EXPECT_GE(node->stats().checkpoints_saved, 3);

  // Kill the node; the corpus moves on without it.
  transport.set_down(true);
  for (int epoch = 4; epoch < 7; ++epoch) publish(epoch);
  // Compaction truncates exactly down to the dead node's acked version —
  // the epochs it missed are still in the log, everything older is not.
  coordinator.CompactLog(*engine.corpus().snapshot());
  EXPECT_EQ(coordinator.log_start(), 4u);

  // Restart from disk: the newest checkpoint is the replica's own
  // version-4 state, so catch-up is pure epoch replay — no snapshot
  // transfer, no version-0 re-sync.
  std::optional<engine::CorpusState> state = store.LoadLatest();
  ASSERT_TRUE(state.has_value());
  EXPECT_EQ(state->version, 4u);
  auto restarted = std::make_unique<ShardNode>(std::move(*state),
                                               node_options);
  transport.set_node(restarted.get());
  transport.set_down(false);
  node.reset();

  Rng qrng(36);
  for (int q = 0; q < 3; ++q) {
    ExpectBitEqual(engine,
                   MakeQuery(engine.corpus().snapshot()->universe_size(), 7,
                             4, qrng.NextSeed(), qrng));
  }
  EXPECT_EQ(restarted->version(), 7u);
  const Coordinator::Stats stats = coordinator.stats();
  EXPECT_EQ(stats.snapshots_sent, 0);
  EXPECT_EQ(stats.local_fallbacks, 0);
  EXPECT_GT(stats.remote_shards, 0);
}

// A RESTARTED coordinator has an empty epoch log (log_start 0, nothing
// in it): the epochs a lagging replica needs may simply not exist in
// this process. Once the first CompactLog retains a bootstrap image,
// catch-up must bridge such nodes by snapshot transfer — epoch replay
// alone can never reach them again.
TEST(RpcTest, RestartedCoordinatorResyncsLaggingReplicaViaSnapshot) {
  Rng rng(41);
  const Dataset data = MakeUniformSynthetic(40, rng);
  Dataset replica = data;
  ShardNode node(replica.weights, std::move(replica.metric), 0.3);
  InProcessTransport transport(&node);
  DiversificationEngine::Options engine_options;
  engine_options.num_workers = 1;
  Dataset mine = data;
  DiversificationEngine engine(mine.weights, std::move(mine.metric), 0.3,
                               engine_options);
  {
    // First coordinator lifetime: one epoch reaches the node...
    Coordinator first({&transport});
    const std::vector<CorpusUpdate> updates =
        engine::MakeSyntheticEpoch(40, /*churn=*/false, 0, rng);
    first.PublishEpoch(engine.ApplyUpdates(updates), updates);
    EXPECT_EQ(node.version(), 1u);
  }
  // ...then the coordinator dies; the corpus moves on without publishing.
  for (int epoch = 1; epoch < 3; ++epoch) {
    engine.ApplyUpdates(
        engine::MakeSyntheticEpoch(40, /*churn=*/false, epoch, rng));
  }

  // Restarted coordinator: empty log, node stuck at version 1. Its
  // first compaction recreates the bootstrap image from the live corpus.
  Coordinator restarted({&transport});
  restarted.CompactLog(*engine.corpus().snapshot());
  EXPECT_EQ(restarted.retained_snapshot_version(), 3u);

  Rng qrng(42);
  engine::Query query = MakeQuery(40, 7, 4, qrng.NextSeed(), qrng);
  const engine::SnapshotPtr snapshot = engine.corpus().snapshot();
  const QueryResult remote = restarted.ExecuteSharded(*snapshot, query, 4);
  Query local = query;
  local.plan = PlanKind::kSharded;
  const QueryResult reference =
      engine::ExecuteQuery(*snapshot, local, engine::PlanDefaults{});
  EXPECT_TRUE(remote.ok);
  EXPECT_EQ(remote.elements, reference.elements);
  EXPECT_EQ(remote.objective, reference.objective);
  EXPECT_EQ(node.version(), 3u);
  const Coordinator::Stats stats = restarted.stats();
  EXPECT_GT(stats.snapshots_sent, 0);
  EXPECT_EQ(stats.local_fallbacks, 0);
}

// Transport whose acks claim an arbitrary replica version — nodes are a
// trust boundary, and an inflated ack must not be able to truncate an
// epoch slot a concurrent publish has not filled yet (which would
// CHECK-abort the straggling publish).
class LyingAckTransport : public Transport {
 public:
  bool Call(const std::vector<std::uint8_t>& request,
            std::vector<std::uint8_t>* response) override {
    (void)request;
    UpdateAck ack;
    ack.status = RpcStatus::kOk;
    ack.node_version = 1000000;  // far beyond anything published
    *response = Encode(ack);
    return true;
  }
};

TEST(RpcTest, InflatedAckCannotTruncateUnpublishedEpochs) {
  Rng rng(43);
  Dataset data = MakeUniformSynthetic(30, rng);
  LyingAckTransport lying;
  Coordinator coordinator({&lying});
  DiversificationEngine::Options engine_options;
  engine_options.num_workers = 1;
  DiversificationEngine engine(data.weights, std::move(data.metric), 0.3,
                               engine_options);
  const std::vector<CorpusUpdate> epoch1{CorpusUpdate::SetWeight(0, 0.5)};
  const std::vector<CorpusUpdate> epoch2{CorpusUpdate::SetWeight(1, 0.25)};
  EXPECT_EQ(engine.ApplyUpdates(epoch1), 1u);
  EXPECT_EQ(engine.ApplyUpdates(epoch2), 2u);
  // Out-of-order publish (the version-slotted log supports this):
  // version 2 lands first, leaving version 1's slot allocated but
  // unfilled.
  coordinator.PublishEpoch(2, epoch2);
  EXPECT_EQ(coordinator.published_version(), 0u);  // hole at slot 0
  // Compaction with the lying node's inflated ack on record must stop
  // at the contiguous published prefix (version 0), not at min(acked).
  EXPECT_EQ(coordinator.CompactLog(*engine.corpus().snapshot()), 0u);
  // The straggling publish must still land, not CHECK-abort.
  coordinator.PublishEpoch(1, epoch1);
  EXPECT_EQ(coordinator.published_version(), 2u);
}

// Transport that fails every Call once its budget runs out — for cutting
// a snapshot transfer off mid-stream.
class BudgetedTransport : public Transport {
 public:
  explicit BudgetedTransport(ShardNode* node) : node_(node) {}
  bool Call(const std::vector<std::uint8_t>& request,
            std::vector<std::uint8_t>* response) override {
    if (budget_ == 0) return false;
    if (budget_ > 0) --budget_;
    *response = node_->Handle(request);
    return true;
  }
  void set_budget(int budget) { budget_ = budget; }  // -1 = unlimited

 private:
  ShardNode* node_;
  int budget_ = -1;
};

// An interrupted snapshot transfer resumes at the node's next missing
// chunk instead of restarting from zero: every chunk crosses the wire
// exactly once.
TEST(RpcTest, InterruptedSnapshotTransferResumes) {
  Rng rng(37);
  const int n = 40;
  const Dataset data = MakeUniformSynthetic(n, rng);
  ShardNode bootstrap_node;  // empty, awaiting snapshot
  BudgetedTransport transport(&bootstrap_node);
  Coordinator::Options coordinator_options;
  coordinator_options.snapshot_chunk_bytes = 512;
  Coordinator coordinator({&transport}, coordinator_options);
  DiversificationEngine::Options engine_options;
  engine_options.remote = &coordinator;
  engine_options.num_workers = 1;
  Dataset mine = data;
  DiversificationEngine engine(mine.weights, std::move(mine.metric), 0.3,
                               engine_options);

  const std::vector<CorpusUpdate> updates = engine::MakeSyntheticEpoch(
      n, /*churn=*/false, 0, rng);
  coordinator.PublishEpoch(engine.ApplyUpdates(updates), updates);
  coordinator.CompactLog(*engine.corpus().snapshot());
  const std::uint32_t num_chunks = static_cast<std::uint32_t>(
      (snapshot::EncodedSnapshotBytes(n) + 511) / 512);
  ASSERT_GT(num_chunks, 5u);

  // Budget: 1 refused epoch batch + the offer + 3 chunks, then the wire
  // dies. The query falls back locally — still bit-equal.
  transport.set_budget(5);
  Rng qrng(38);
  ExpectBitEqual(engine, MakeQuery(n, 6, 4, qrng.NextSeed(), qrng));
  EXPECT_EQ(bootstrap_node.stats().snapshot_chunks, 3);
  EXPECT_TRUE(bootstrap_node.awaiting_bootstrap());
  EXPECT_GT(coordinator.stats().local_fallbacks, 0);

  // Wire heals: the next query's catch-up resumes at chunk 3 and
  // completes the install; the node then serves remotely.
  transport.set_budget(-1);
  ExpectBitEqual(engine, MakeQuery(n, 6, 4, qrng.NextSeed(), qrng));
  EXPECT_FALSE(bootstrap_node.awaiting_bootstrap());
  EXPECT_EQ(bootstrap_node.version(), 1u);
  const ShardNode::Stats node_stats = bootstrap_node.stats();
  EXPECT_EQ(node_stats.snapshots_installed, 1);
  // Exactly once per chunk — 3 before the cut, the remaining after.
  EXPECT_EQ(node_stats.snapshot_chunks,
            static_cast<long long>(num_chunks));
  const Coordinator::Stats stats = coordinator.stats();
  EXPECT_EQ(stats.snapshots_sent, 2);  // two transfer attempts
  EXPECT_EQ(stats.snapshot_chunks_sent,
            static_cast<long long>(num_chunks));
  EXPECT_GT(stats.remote_shards, 0);
}

// The acceptance path over real sockets: two shard nodes behind loopback
// SocketServers, coordinator on SocketTransports — bit-equal before and
// after replica-sync epochs, and after both nodes die (local fallback).
TEST(RpcTest, SocketLoopbackEndToEnd) {
  Rng rng(21);
  const Dataset data = MakeUniformSynthetic(50, rng);

  std::vector<std::unique_ptr<ShardNode>> nodes;
  std::vector<std::unique_ptr<SocketServer>> servers;
  std::vector<std::unique_ptr<SocketTransport>> transports;
  std::vector<Transport*> raw;
  for (int i = 0; i < 2; ++i) {
    Dataset replica = data;
    nodes.push_back(std::make_unique<ShardNode>(
        replica.weights, std::move(replica.metric), 0.3));
    servers.push_back(
        std::make_unique<SocketServer>(nodes.back().get(), /*port=*/0));
    servers.back()->Start();
    transports.push_back(std::make_unique<SocketTransport>(
        "127.0.0.1", servers.back()->port()));
    raw.push_back(transports.back().get());
  }
  Coordinator coordinator(raw);
  DiversificationEngine::Options options;
  options.remote = &coordinator;
  options.num_workers = 2;
  Dataset mine = data;
  DiversificationEngine engine(mine.weights, std::move(mine.metric), 0.3,
                               options);

  Rng qrng(22);
  ExpectBitEqual(engine, MakeQuery(50, 7, 4, qrng.NextSeed(), qrng));

  for (int epoch = 0; epoch < 3; ++epoch) {
    const std::vector<CorpusUpdate> updates =
        engine::MakeSyntheticEpoch(50, /*churn=*/false, epoch, qrng);
    coordinator.PublishEpoch(engine.ApplyUpdates(updates), updates);
  }
  EXPECT_EQ(nodes[0]->version(), 3u);
  EXPECT_EQ(nodes[1]->version(), 3u);
  ExpectBitEqual(engine, MakeQuery(50, 7, 4, qrng.NextSeed(), qrng));
  EXPECT_GT(coordinator.stats().remote_shards, 0);

  // Kill both nodes; the coordinator degrades to local execution with the
  // same answers.
  for (auto& server : servers) server->Stop();
  ExpectBitEqual(engine, MakeQuery(50, 7, 4, qrng.NextSeed(), qrng));
  EXPECT_GT(coordinator.stats().local_fallbacks, 0);
}

}  // namespace
}  // namespace rpc
}  // namespace diverse
