// MetricBackend seam tests: the batched-kernel contract (every batched
// query bit-equal to scalar Distance()), the VectorMetric kernel's
// bit-reproducibility and symmetry, DenseMetric::Materialize as a
// bit-equality oracle, DistanceCache delegate mode, repr-aware update /
// state validation, and end-to-end engine answers over the vector
// backend matching the dense oracle bitwise across churn epochs.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "core/distance_cache.h"
#include "engine/corpus.h"
#include "engine/engine.h"
#include "engine/query.h"
#include "metric/dense_metric.h"
#include "metric/graph_metric.h"
#include "metric/jaccard_metric.h"
#include "metric/metric_backend.h"
#include "metric/vector_metric.h"
#include "util/random.h"

namespace diverse {
namespace {

VectorMetric MakeVectors(int n, int dim, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> data;
  data.reserve(static_cast<std::size_t>(n) * dim);
  for (int i = 0; i < n * dim; ++i) data.push_back(rng.Uniform(-2.0, 2.0));
  return VectorMetric::FromRows(dim, std::move(data));
}

TEST(VectorMetricTest, ZeroDiagonalAndExactSymmetry) {
  const VectorMetric vectors = MakeVectors(23, 7, 3);
  for (int u = 0; u < vectors.size(); ++u) {
    EXPECT_EQ(vectors.Distance(u, u), 0.0);
    for (int v = 0; v < vectors.size(); ++v) {
      // Bitwise, not approximate: the kernel squares the exact IEEE
      // negations of the same differences in the same lane order.
      EXPECT_EQ(vectors.Distance(u, v), vectors.Distance(v, u))
          << "d(" << u << "," << v << ")";
    }
  }
}

TEST(VectorMetricTest, MatchesNaiveEuclidean) {
  const int dim = 5;
  const VectorMetric vectors = MakeVectors(12, dim, 5);
  for (int u = 0; u < vectors.size(); ++u) {
    for (int v = 0; v < vectors.size(); ++v) {
      double sum = 0.0;
      for (int k = 0; k < dim; ++k) {
        const double diff = vectors.row(u)[k] - vectors.row(v)[k];
        sum += diff * diff;
      }
      // The lane-split accumulation may round differently from the naive
      // left-to-right sum, so this is a near check; bitwise guarantees
      // are only between kernel outputs (previous test) and across
      // backends fed by the kernel (oracle tests below).
      EXPECT_NEAR(vectors.Distance(u, v), std::sqrt(sum), 1e-12);
    }
  }
}

// The MetricBackend contract: batched queries return exactly what scalar
// Distance() returns, bit for bit.
TEST(VectorMetricTest, BatchedQueriesBitEqualScalar) {
  const VectorMetric vectors = MakeVectors(31, 9, 7);
  const int n = vectors.size();
  std::vector<double> row(n);
  for (int u = 0; u < n; ++u) {
    vectors.DistanceRow(u, row);
    for (int v = 0; v < n; ++v) {
      EXPECT_EQ(row[v], vectors.Distance(u, v));
    }
  }
  const std::vector<int> ids = {0, 7, 7, 30, 1};
  std::vector<double> out(ids.size());
  vectors.DistancesTo(3, ids, out);
  for (std::size_t i = 0; i < ids.size(); ++i) {
    EXPECT_EQ(out[i], vectors.Distance(3, ids[i]));
  }
  // Vector rows are computed on demand — no resident storage to expose.
  EXPECT_EQ(vectors.TryRow(0), nullptr);
}

TEST(VectorMetricTest, RepeatedCallsBitIdentical) {
  const VectorMetric vectors = MakeVectors(17, 13, 11);
  const int n = vectors.size();
  std::vector<double> first(n);
  std::vector<double> again(n);
  for (int u = 0; u < n; ++u) {
    vectors.DistanceRow(u, first);
    vectors.DistanceRow(u, again);
    EXPECT_EQ(first, again);
  }
}

TEST(VectorMetricTest, SetRowAndAppendRowRecomputeDistances) {
  VectorMetric vectors(3, 2);
  EXPECT_EQ(vectors.Distance(0, 1), 0.0);  // all at the origin
  const std::vector<double> e0 = {3.0, 0.0};
  const std::vector<double> e1 = {0.0, 4.0};
  vectors.SetRow(0, e0);
  vectors.SetRow(1, e1);
  EXPECT_EQ(vectors.Distance(0, 1), 5.0);
  const std::vector<double> e3 = {3.0, 4.0};
  EXPECT_EQ(vectors.AppendRow(e3), 3);
  EXPECT_EQ(vectors.size(), 4);
  EXPECT_EQ(vectors.Distance(0, 3), 4.0);
  EXPECT_EQ(vectors.Distance(1, 3), 3.0);
}

// The dense matrix materialized from the kernel stores bit-identical
// values — the property that makes it the oracle for the vector backend.
TEST(MetricBackendTest, MaterializedDenseIsBitEqualOracle) {
  const VectorMetric vectors = MakeVectors(29, 6, 13);
  const DenseMetric dense = DenseMetric::Materialize(vectors);
  ASSERT_EQ(dense.size(), vectors.size());
  for (int u = 0; u < dense.size(); ++u) {
    const double* resident = dense.TryRow(u);
    ASSERT_NE(resident, nullptr);
    for (int v = 0; v < dense.size(); ++v) {
      EXPECT_EQ(dense.Distance(u, v), vectors.Distance(u, v));
      EXPECT_EQ(resident[v], vectors.Distance(u, v));
    }
  }
}

TEST(MetricBackendTest, AsBackendSeesBackendsOnly) {
  const VectorMetric vectors = MakeVectors(4, 2, 17);
  const DenseMetric dense(4);
  EXPECT_NE(AsBackend(&vectors), nullptr);
  EXPECT_NE(AsBackend(&dense), nullptr);
}

TEST(DistanceCacheDelegateTest, ForwardsToBaseKernels) {
  const VectorMetric vectors = MakeVectors(19, 4, 19);
  DistanceCache cache(&vectors, {.delegate = true});
  EXPECT_TRUE(cache.delegating());
  EXPECT_FALSE(cache.dense());
  const int n = cache.size();
  ASSERT_EQ(n, vectors.size());
  std::vector<double> row(n);
  for (int u = 0; u < n; ++u) {
    cache.DistanceRow(u, row);
    for (int v = 0; v < n; ++v) {
      EXPECT_EQ(row[v], vectors.Distance(u, v));
      EXPECT_EQ(cache.Distance(u, v), vectors.Distance(u, v));
    }
  }
  // Nothing materialized: the base is authoritative, Refresh is a no-op.
  EXPECT_EQ(cache.TryRow(0), vectors.TryRow(0));
  const std::uint64_t version = cache.version();
  cache.Refresh(0, 1);
  EXPECT_EQ(cache.Distance(0, 1), vectors.Distance(0, 1));
  EXPECT_GE(cache.version(), version);
}

// ---- Default batched fallbacks over plain scalar metrics -------------------

// The thinnest possible backend: nothing overridden beyond the scalar
// interface, so DistanceRow/DistancesTo run MetricBackend's own default
// loops. Wrapping metrics that are NOT backends (graph shortest paths,
// Jaccard sets) proves the defaults hold the bit-equality contract for
// arbitrary scalar implementations, not just the vector kernel.
class ScalarOnlyBackend : public MetricBackend {
 public:
  explicit ScalarOnlyBackend(const MetricSpace* base) : base_(base) {}
  int size() const override { return base_->size(); }
  double Distance(int u, int v) const override {
    return base_->Distance(u, v);
  }

 private:
  const MetricSpace* base_;
};

TEST(MetricBackendDefaultsTest, GraphMetricRowsBitEqualScalar) {
  // A connected weighted graph whose shortest paths are served per-pair.
  const int n = 12;
  std::vector<WeightedEdge> edges;
  Rng rng(41);
  for (int i = 1; i < n; ++i) {
    edges.push_back({rng.UniformInt(0, i - 1), i, rng.Uniform(0.5, 2.0)});
  }
  for (int extra = 0; extra < 8; ++extra) {
    const int a = rng.UniformInt(0, n - 1);
    const int b = rng.UniformInt(0, n - 1);
    if (a != b) edges.push_back({a, b, rng.Uniform(0.5, 3.0)});
  }
  const GraphMetric graph(n, edges);
  ASSERT_EQ(AsBackend(&graph), nullptr);  // plain MetricSpace, no backend
  const ScalarOnlyBackend backend(&graph);

  std::vector<double> row(n);
  for (int u = 0; u < n; ++u) {
    backend.DistanceRow(u, row);
    for (int v = 0; v < n; ++v) {
      EXPECT_EQ(row[v], graph.Distance(u, v));
    }
  }
  const std::vector<int> ids = {3, 0, 11, 3, 7};
  std::vector<double> out(ids.size());
  backend.DistancesTo(5, ids, out);
  for (std::size_t i = 0; i < ids.size(); ++i) {
    EXPECT_EQ(out[i], graph.Distance(5, ids[i]));
  }
  // The default backend stores nothing, so there is no resident row.
  EXPECT_EQ(backend.TryRow(0), nullptr);
}

TEST(MetricBackendDefaultsTest, JaccardMetricRowsBitEqualScalar) {
  std::vector<std::vector<int>> attributes;
  Rng rng(43);
  for (int i = 0; i < 15; ++i) {
    std::vector<int> attrs;
    const int count = rng.UniformInt(0, 6);
    for (int j = 0; j < count; ++j) attrs.push_back(rng.UniformInt(0, 9));
    attributes.push_back(std::move(attrs));
  }
  const JaccardMetric jaccard(std::move(attributes));
  ASSERT_EQ(AsBackend(&jaccard), nullptr);
  const ScalarOnlyBackend backend(&jaccard);

  const int n = backend.size();
  std::vector<double> row(n);
  for (int u = 0; u < n; ++u) {
    backend.DistanceRow(u, row);
    for (int v = 0; v < n; ++v) {
      EXPECT_EQ(row[v], jaccard.Distance(u, v));
    }
  }
  const std::vector<int> ids = {0, 14, 7, 7, 2, 0};
  std::vector<double> out(ids.size());
  backend.DistancesTo(9, ids, out);
  for (std::size_t i = 0; i < ids.size(); ++i) {
    EXPECT_EQ(out[i], jaccard.Distance(9, ids[i]));
  }
}

// Empty id lists and empty metrics must be no-ops, not UB.
TEST(MetricBackendDefaultsTest, DegenerateShapes) {
  const JaccardMetric jaccard({{1}, {2}});
  const ScalarOnlyBackend backend(&jaccard);
  backend.DistancesTo(0, {}, {});
  std::vector<double> row(2);
  backend.DistanceRow(1, row);
  EXPECT_EQ(row[1], 0.0);
}

// ---- Repr-aware validation -------------------------------------------------

TEST(ValidUpdateTest, VectorContextAcceptsOnlyVectorKinds) {
  engine::UpdateContext ctx;
  ctx.n = 5;
  ctx.repr = engine::MetricRepr::kVector;
  ctx.dim = 3;

  EXPECT_TRUE(engine::ValidUpdate(
      engine::CorpusUpdate::InsertVector(0.5, {1.0, -2.0, 0.0}), &ctx));
  EXPECT_EQ(ctx.n, 6);  // a valid insert grows the context
  EXPECT_TRUE(engine::ValidUpdate(engine::CorpusUpdate::SetWeight(5, 0.25),
                                  &ctx));
  EXPECT_TRUE(engine::ValidUpdate(engine::CorpusUpdate::Erase(0), &ctx));

  // Dense-only kinds are invalid under the vector representation.
  EXPECT_FALSE(engine::ValidUpdate(
      engine::CorpusUpdate::SetDistance(0, 1, 1.0), &ctx));
  EXPECT_FALSE(engine::ValidUpdate(
      engine::CorpusUpdate::Insert(0.5, {1.0, 1.0, 1.0, 1.0, 1.0, 1.0}),
      &ctx));

  // Wrong dimension, bad weight, bad components.
  EXPECT_FALSE(engine::ValidUpdate(
      engine::CorpusUpdate::InsertVector(0.5, {1.0, 2.0}), &ctx));
  EXPECT_FALSE(engine::ValidUpdate(
      engine::CorpusUpdate::InsertVector(-1.0, {1.0, 2.0, 3.0}), &ctx));
  EXPECT_FALSE(engine::ValidUpdate(
      engine::CorpusUpdate::InsertVector(
          0.5, {1.0, std::nan(""), 3.0}),
      &ctx));
  EXPECT_FALSE(engine::ValidUpdate(
      engine::CorpusUpdate::InsertVector(0.5, {1.0, 2.0, 2e100}), &ctx));
  EXPECT_EQ(ctx.n, 6);  // failed inserts must not grow the context

  // And the mirror image: vector inserts are invalid under kDense.
  engine::UpdateContext dense_ctx;
  dense_ctx.n = 5;
  EXPECT_FALSE(engine::ValidUpdate(
      engine::CorpusUpdate::InsertVector(0.5, {1.0, 2.0, 3.0}),
      &dense_ctx));
}

TEST(ValidStateTest, VectorStatesValidated) {
  engine::CorpusState state;
  state.repr = engine::MetricRepr::kVector;
  state.weights = {0.5, 0.25};
  state.alive = {1, 1};
  state.vectors = VectorMetric::FromRows(2, {0.0, 1.0, 1.0, 0.0});
  EXPECT_TRUE(engine::ValidState(state));

  // The unused dense payload must stay empty.
  engine::CorpusState dense_leak = state;
  dense_leak.metric = DenseMetric(2);
  EXPECT_FALSE(engine::ValidState(dense_leak));

  // Size mismatch between weights and vectors.
  engine::CorpusState skew = state;
  skew.vectors = VectorMetric::FromRows(2, {0.0, 1.0});
  EXPECT_FALSE(engine::ValidState(skew));

  // Component out of range.
  engine::CorpusState huge = state;
  huge.vectors = VectorMetric::FromRows(2, {0.0, 1.0, -2e100, 0.0});
  EXPECT_FALSE(engine::ValidState(huge));

  // And a vector state must not carry repr = kDense.
  engine::CorpusState wrong_repr = state;
  wrong_repr.repr = engine::MetricRepr::kDense;
  EXPECT_FALSE(engine::ValidState(wrong_repr));
}

// ---- End-to-end: engine over the vector backend vs the dense oracle --------

bool SameAnswer(const engine::QueryResult& a, const engine::QueryResult& b) {
  return a.ok == b.ok && a.elements == b.elements &&
         a.objective == b.objective;
}

TEST(EngineVectorBackendTest, AnswersBitEqualToDenseOracleAcrossChurn) {
  const int n = 60;
  const int dim = 8;
  Rng rng(23);
  VectorMetric vectors = MakeVectors(n, dim, 29);
  std::vector<double> weights(n);
  for (double& w : weights) w = rng.Uniform(0.0, 1.0);

  engine::DiversificationEngine::Options options;
  options.num_workers = 1;
  engine::DiversificationEngine vec_engine(weights, vectors, 0.3, options);
  engine::DiversificationEngine dense_engine(
      weights, DenseMetric::Materialize(vectors), 0.3, options);

  engine::Query query;
  query.p = 12;
  EXPECT_TRUE(SameAnswer(vec_engine.RunSync(query),
                         dense_engine.RunSync(query)));

  // Churn epochs: fresh embeddings in (the dense twin receives the
  // kernel-computed distance row for each), old ids out, weights moved.
  // Answers must stay bitwise identical after every epoch.
  VectorMetric grown(vectors);
  for (int e = 0; e < 4; ++e) {
    const int universe = grown.size();
    std::vector<double> fresh(dim);
    for (double& x : fresh) x = rng.Uniform(-2.0, 2.0);
    grown.AppendRow(fresh);
    std::vector<double> grown_row(universe + 1);
    grown.DistanceRow(universe, grown_row);
    std::vector<double> fresh_distances(grown_row.begin(),
                                        grown_row.begin() + universe);

    const double weight = rng.Uniform(0.0, 1.0);
    const int retired = rng.UniformInt(0, universe - 1);
    const int nudged = rng.UniformInt(0, universe - 1);
    const double nudge = rng.Uniform(0.0, 2.0);
    vec_engine.ApplyUpdates(std::vector<engine::CorpusUpdate>{
        engine::CorpusUpdate::InsertVector(weight, fresh),
        engine::CorpusUpdate::Erase(retired),
        engine::CorpusUpdate::SetWeight(nudged, nudge)});
    dense_engine.ApplyUpdates(std::vector<engine::CorpusUpdate>{
        engine::CorpusUpdate::Insert(weight, std::move(fresh_distances)),
        engine::CorpusUpdate::Erase(retired),
        engine::CorpusUpdate::SetWeight(nudged, nudge)});

    const engine::QueryResult vec_result = vec_engine.RunSync(query);
    const engine::QueryResult dense_result = dense_engine.RunSync(query);
    EXPECT_TRUE(SameAnswer(vec_result, dense_result)) << "epoch " << e;
    EXPECT_EQ(vec_result.corpus_version, dense_result.corpus_version);
  }
}

// Local search refines through the same seam: swap scans pull rows via
// TryRow/DistanceRow, and the vector backend's answers must match the
// oracle's bitwise there too.
TEST(EngineVectorBackendTest, LocalSearchMatchesDenseOracle) {
  const int n = 40;
  Rng rng(31);
  const VectorMetric vectors = MakeVectors(n, 6, 37);
  std::vector<double> weights(n);
  for (double& w : weights) w = rng.Uniform(0.0, 1.0);

  engine::DiversificationEngine::Options options;
  options.num_workers = 1;
  engine::DiversificationEngine vec_engine(weights, vectors, 0.4, options);
  engine::DiversificationEngine dense_engine(
      weights, DenseMetric::Materialize(vectors), 0.4, options);

  engine::Query query;
  query.p = 10;
  query.algorithm = engine::QueryAlgorithm::kLocalSearch;
  EXPECT_TRUE(SameAnswer(vec_engine.RunSync(query),
                         dense_engine.RunSync(query)));
}

}  // namespace
}  // namespace diverse
