#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>
#include <vector>

#include "algorithms/brute_force.h"
#include "algorithms/greedy_vertex.h"
#include "algorithms/knapsack_greedy.h"
#include "algorithms/mmr.h"
#include "algorithms/random_select.h"
#include "algorithms/streaming.h"
#include "core/diversification_problem.h"
#include "data/synthetic.h"
#include "matroid/partition_matroid.h"
#include "submodular/modular_function.h"
#include "util/random.h"

namespace diverse {
namespace {

struct Fixture {
  Dataset data;
  ModularFunction weights;
  DiversificationProblem problem;

  Fixture(int n, double lambda, Rng& rng)
      : data(MakeUniformSynthetic(n, rng)),
        weights(data.weights),
        problem(&data.metric, &weights, lambda) {}
};

TEST(MmrTest, SelectsPDistinct) {
  Rng rng(1);
  Fixture fx(15, 0.2, rng);
  const AlgorithmResult result = Mmr(fx.problem, fx.weights, {.p = 6});
  EXPECT_EQ(result.elements.size(), 6u);
  const std::set<int> unique(result.elements.begin(), result.elements.end());
  EXPECT_EQ(unique.size(), 6u);
}

TEST(MmrTest, MuOneIsPureRelevanceRanking) {
  Rng rng(2);
  Fixture fx(12, 0.2, rng);
  const AlgorithmResult result =
      Mmr(fx.problem, fx.weights, {.p = 4, .mu = 1.0});
  std::vector<int> order(12);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    return fx.data.weights[a] > fx.data.weights[b];
  });
  const std::set<int> expect(order.begin(), order.begin() + 4);
  const std::set<int> got(result.elements.begin(), result.elements.end());
  EXPECT_EQ(got, expect);
}

TEST(MmrTest, FirstPickIsMostRelevant) {
  Rng rng(3);
  Fixture fx(10, 0.2, rng);
  const AlgorithmResult result =
      Mmr(fx.problem, fx.weights, {.p = 3, .mu = 0.7});
  int best = 0;
  for (int i = 1; i < 10; ++i) {
    if (fx.data.weights[i] > fx.data.weights[best]) best = i;
  }
  EXPECT_EQ(result.elements[0], best);
}

TEST(MmrTest, GreedyBCompetitiveWithMmrOnTheObjective) {
  // MMR optimizes its own score, not phi, and carries no approximation
  // guarantee; Greedy B does. On aggregate Greedy B should be at least
  // competitive on phi (individual instances can go either way since
  // Greedy B optimizes a potential, not phi itself).
  double greedy_sum = 0.0;
  double mmr_sum = 0.0;
  for (int seed = 1; seed <= 15; ++seed) {
    Rng rng(seed * 13);
    Fixture fx(20, 0.2, rng);
    greedy_sum += GreedyVertex(fx.problem, {.p = 5}).objective;
    mmr_sum += Mmr(fx.problem, fx.weights, {.p = 5, .mu = 0.5}).objective;
  }
  EXPECT_GE(greedy_sum, 0.97 * mmr_sum);
}

TEST(RandomSelectTest, SubsetSizeAndValidity) {
  Rng data_rng(4);
  Fixture fx(10, 0.2, data_rng);
  Rng rng(5);
  const AlgorithmResult result = RandomSubset(fx.problem, 4, rng);
  EXPECT_EQ(result.elements.size(), 4u);
  EXPECT_NEAR(result.objective, fx.problem.Objective(result.elements), 1e-9);
}

TEST(RandomSelectTest, RandomBasisIsABasis) {
  Rng data_rng(6);
  Fixture fx(9, 0.2, data_rng);
  const PartitionMatroid matroid({0, 0, 0, 1, 1, 1, 2, 2, 2}, {1, 2, 1});
  Rng rng(7);
  const AlgorithmResult result = RandomBasis(fx.problem, matroid, rng);
  EXPECT_EQ(static_cast<int>(result.elements.size()), matroid.rank());
  EXPECT_TRUE(matroid.IsIndependent(result.elements));
}

TEST(RandomSelectTest, GreedyBeatsRandomOnAverage) {
  Rng rng(8);
  double greedy_sum = 0.0;
  double random_sum = 0.0;
  for (int trial = 0; trial < 10; ++trial) {
    Fixture fx(25, 0.2, rng);
    greedy_sum += GreedyVertex(fx.problem, {.p = 6}).objective;
    random_sum += RandomSubset(fx.problem, 6, rng).objective;
  }
  EXPECT_GT(greedy_sum, random_sum);
}

TEST(StreamingTest, FillsThenSwaps) {
  Rng rng(9);
  Fixture fx(20, 0.2, rng);
  StreamingDiversifier stream(&fx.problem, 4);
  for (int v = 0; v < 4; ++v) {
    EXPECT_TRUE(stream.Observe(v));
  }
  EXPECT_EQ(stream.size(), 4);
  for (int v = 4; v < 20; ++v) stream.Observe(v);
  EXPECT_EQ(stream.size(), 4);
  EXPECT_NEAR(stream.objective(), fx.problem.Objective(stream.current()),
              1e-9);
}

TEST(StreamingTest, SwapsOnlyWhenImproving) {
  Rng rng(10);
  Fixture fx(30, 0.2, rng);
  StreamingDiversifier stream(&fx.problem, 5);
  double prev = 0.0;
  for (int v = 0; v < 30; ++v) {
    stream.Observe(v);
    EXPECT_GE(stream.objective() + 1e-12, prev);
    prev = stream.objective();
  }
}

TEST(StreamingTest, OrderMattersButQualityIsReasonable) {
  // Streaming should land within a modest factor of greedy on random data.
  Rng rng(11);
  Fixture fx(40, 0.2, rng);
  StreamingDiversifier stream(&fx.problem, 6);
  std::vector<int> order(40);
  std::iota(order.begin(), order.end(), 0);
  rng.Shuffle(&order);
  stream.ObserveAll(order);
  const AlgorithmResult greedy = GreedyVertex(fx.problem, {.p = 6});
  EXPECT_GE(stream.objective() * 2.0, greedy.objective);
}

TEST(StreamingTest, ZeroCapacityNeverAdds) {
  Rng rng(12);
  Fixture fx(5, 0.2, rng);
  StreamingDiversifier stream(&fx.problem, 0);
  EXPECT_FALSE(stream.Observe(0));
  EXPECT_EQ(stream.size(), 0);
}

TEST(KnapsackTest, RespectsBudget) {
  Rng rng(13);
  Fixture fx(15, 0.2, rng);
  KnapsackOptions options;
  options.costs.assign(15, 0.0);
  for (double& c : options.costs) c = rng.Uniform(0.5, 1.5);
  options.budget = 4.0;
  options.seed_size = 1;
  const AlgorithmResult result = KnapsackGreedy(fx.problem, options);
  double cost = 0.0;
  for (int e : result.elements) cost += options.costs[e];
  EXPECT_LE(cost, options.budget + 1e-9);
  EXPECT_NEAR(result.objective, fx.problem.Objective(result.elements), 1e-9);
}

TEST(KnapsackTest, UnitCostsBudgetPEqualsCardinality) {
  // With unit costs and budget p the feasible sets are exactly |S| <= p.
  Rng rng(14);
  Fixture fx(12, 0.2, rng);
  KnapsackOptions options;
  options.costs.assign(12, 1.0);
  options.budget = 4.0;
  options.seed_size = 2;
  const AlgorithmResult knap = KnapsackGreedy(fx.problem, options);
  EXPECT_EQ(knap.elements.size(), 4u);
  const AlgorithmResult opt = BruteForceCardinality(fx.problem, {.p = 4});
  // Partial enumeration with pair seeds does well here.
  EXPECT_GE(knap.objective * 2.0 + 1e-9, opt.objective);
}

TEST(KnapsackTest, NothingFitsEmptyResult) {
  Rng rng(15);
  Fixture fx(6, 0.2, rng);
  KnapsackOptions options;
  options.costs.assign(6, 10.0);
  options.budget = 1.0;
  const AlgorithmResult result = KnapsackGreedy(fx.problem, options);
  EXPECT_TRUE(result.elements.empty());
  EXPECT_DOUBLE_EQ(result.objective, 0.0);
}

TEST(KnapsackTest, NearOptimalOnSmallInstances) {
  for (int seed = 1; seed <= 6; ++seed) {
    Rng rng(seed * 17);
    Fixture fx(10, 0.2, rng);
    KnapsackOptions options;
    options.costs.assign(10, 0.0);
    for (double& c : options.costs) c = rng.Uniform(0.2, 1.0);
    options.budget = 2.0;
    options.seed_size = 2;
    const AlgorithmResult greedy = KnapsackGreedy(fx.problem, options);
    const AlgorithmResult opt =
        BruteForceKnapsack(fx.problem, options.costs, options.budget);
    EXPECT_GE(greedy.objective * 2.0 + 1e-9, opt.objective) << seed;
  }
}

TEST(KnapsackTest, BruteForceRespectsBudget) {
  Rng rng(16);
  Fixture fx(8, 0.2, rng);
  std::vector<double> costs(8);
  for (double& c : costs) c = rng.Uniform(0.2, 1.0);
  const AlgorithmResult opt = BruteForceKnapsack(fx.problem, costs, 1.5);
  double cost = 0.0;
  for (int e : opt.elements) cost += costs[e];
  EXPECT_LE(cost, 1.5 + 1e-9);
}

}  // namespace
}  // namespace diverse
