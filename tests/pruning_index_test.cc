// PruningIndex unit tests: deterministic seed-stable pivot selection, the
// bound sandwich Lower <= d <= Upper on vector and dense backends, the
// resident/lazy storage split (dense indexes read live rows, so
// SetDistance needs no maintenance), WithAppended coverage growth, and
// degenerate shapes (empty corpus, single element, duplicate points).
#include "metric/pruning_index.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <numeric>
#include <vector>

#include "metric/dense_metric.h"
#include "metric/vector_metric.h"
#include "util/random.h"

namespace diverse {
namespace {

VectorMetric MakeVectors(int n, int dim, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> data;
  data.reserve(static_cast<std::size_t>(n) * dim);
  for (int i = 0; i < n * dim; ++i) data.push_back(rng.Uniform(-2.0, 2.0));
  return VectorMetric::FromRows(dim, std::move(data));
}

std::vector<int> AllIds(int n) {
  std::vector<int> ids(n);
  std::iota(ids.begin(), ids.end(), 0);
  return ids;
}

TEST(PruningIndexTest, BuildIsDeterministicAndSeedStable) {
  const VectorMetric vectors = MakeVectors(50, 6, 3);
  const std::vector<int> ids = AllIds(50);
  PruningIndex::Options options;
  options.num_pivots = 6;
  const auto a = PruningIndex::Build(vectors, ids, options);
  const auto b = PruningIndex::Build(vectors, ids, options);
  ASSERT_TRUE(a->usable());
  EXPECT_EQ(a->pivots(), b->pivots());
  EXPECT_EQ(a->num_pivots(), 6);
  EXPECT_EQ(a->universe_size(), 50);
  EXPECT_FALSE(a->resident());  // vector rows are computed on demand

  // A different seed may pick a different start, but stays deterministic.
  options.seed = 99;
  const auto c = PruningIndex::Build(vectors, ids, options);
  const auto d = PruningIndex::Build(vectors, ids, options);
  EXPECT_EQ(c->pivots(), d->pivots());
}

TEST(PruningIndexTest, PivotsAreDistinctAliveIds) {
  const VectorMetric vectors = MakeVectors(40, 5, 7);
  // Restrict to even ids only — pivots must come from the given pool.
  std::vector<int> ids;
  for (int i = 0; i < 40; i += 2) ids.push_back(i);
  PruningIndex::Options options;
  options.num_pivots = 8;
  const auto index = PruningIndex::Build(vectors, ids, options);
  ASSERT_TRUE(index->usable());
  std::vector<int> seen;
  for (int pivot : index->pivots()) {
    EXPECT_EQ(pivot % 2, 0) << "pivot outside the id pool";
    for (int prior : seen) EXPECT_NE(pivot, prior);
    seen.push_back(pivot);
  }
}

TEST(PruningBoundsTest, SandwichHoldsOnVectorBackend) {
  const VectorMetric vectors = MakeVectors(45, 7, 11);
  PruningIndex::Options options;
  options.num_pivots = 5;
  const auto index = PruningIndex::Build(vectors, AllIds(45), options);
  const PruningBounds bounds(*index, vectors);
  ASSERT_TRUE(bounds.active());
  std::vector<double> profile(bounds.num_pivots());
  for (int u = 0; u < 45; ++u) {
    ASSERT_TRUE(bounds.Profile(u, profile));
    for (int v = 0; v < 45; ++v) {
      const double d = vectors.Distance(u, v);
      EXPECT_LE(bounds.Lower(profile, v), d) << u << "," << v;
      EXPECT_GE(bounds.Upper(profile, v), d) << u << "," << v;
      EXPECT_TRUE(bounds.Consistent(profile, v, d));
    }
  }
}

TEST(PruningBoundsTest, SandwichHoldsOnDenseBackend) {
  const VectorMetric vectors = MakeVectors(30, 4, 13);
  const DenseMetric dense = DenseMetric::Materialize(vectors);
  PruningIndex::Options options;
  options.num_pivots = 4;
  const auto index = PruningIndex::Build(dense, AllIds(30), options);
  ASSERT_TRUE(index->resident());  // ids only, rows read live
  const PruningBounds bounds(*index, dense);
  ASSERT_TRUE(bounds.active());
  std::vector<double> profile(bounds.num_pivots());
  for (int u = 0; u < 30; ++u) {
    ASSERT_TRUE(bounds.Profile(u, profile));
    for (int v = 0; v < 30; ++v) {
      const double d = dense.Distance(u, v);
      EXPECT_LE(bounds.Lower(profile, v), d);
      EXPECT_GE(bounds.Upper(profile, v), d);
    }
  }
}

// Resident indexes read pivot rows live from the backend, so an in-place
// SetDistance epoch is reflected immediately — no rebuild, bounds stay
// sound for the NEW values.
TEST(PruningBoundsTest, DenseIndexSeesSetDistanceLive) {
  Rng rng(17);
  DenseMetric dense(20);
  for (int u = 0; u < 20; ++u) {
    for (int v = u + 1; v < 20; ++v) {
      dense.SetDistance(u, v, rng.Uniform(1.0, 2.0));  // genuine metric
    }
  }
  PruningIndex::Options options;
  options.num_pivots = 4;
  const auto index = PruningIndex::Build(dense, AllIds(20), options);
  // Perturb within [1, 2] — still a metric (any values in [1, 2] satisfy
  // the triangle inequality).
  for (int e = 0; e < 10; ++e) {
    const int u = rng.UniformInt(0, 19);
    int v = rng.UniformInt(0, 19);
    while (v == u) v = rng.UniformInt(0, 19);
    dense.SetDistance(u, v, rng.Uniform(1.0, 2.0));
  }
  const PruningBounds bounds(*index, dense);
  ASSERT_TRUE(bounds.active());
  std::vector<double> profile(bounds.num_pivots());
  for (int u = 0; u < 20; ++u) {
    ASSERT_TRUE(bounds.Profile(u, profile));
    for (int v = 0; v < 20; ++v) {
      const double d = dense.Distance(u, v);
      EXPECT_LE(bounds.Lower(profile, v), d);
      EXPECT_GE(bounds.Upper(profile, v), d);
    }
  }
}

TEST(PruningIndexTest, WithAppendedExtendsLazyCoverage) {
  VectorMetric vectors = MakeVectors(25, 6, 19);
  PruningIndex::Options options;
  options.num_pivots = 5;
  const auto index = PruningIndex::Build(vectors, AllIds(25), options);
  ASSERT_TRUE(index->usable());

  // Grow the corpus; the original index does not cover the new ids...
  Rng rng(23);
  for (int e = 0; e < 6; ++e) {
    std::vector<double> fresh(6);
    for (double& x : fresh) x = rng.Uniform(-2.0, 2.0);
    vectors.AppendRow(fresh);
  }
  {
    const PruningBounds stale(*index, vectors);
    ASSERT_TRUE(stale.active());
    std::vector<double> profile(stale.num_pivots());
    EXPECT_TRUE(stale.Profile(10, profile));
    EXPECT_FALSE(stale.Profile(27, profile));  // appended, uncovered
    // Uncovered target: bounds must degenerate to the sound no-prune pair.
    ASSERT_TRUE(stale.Profile(10, profile));
    EXPECT_EQ(stale.Lower(profile, 27), 0.0);
    EXPECT_GT(stale.Upper(profile, 27), 1e300);
  }

  // ...until WithAppended materializes exact columns for them.
  const auto grown = index->WithAppended(vectors);
  EXPECT_EQ(grown->pivots(), index->pivots());
  EXPECT_EQ(grown->universe_size(), 31);
  const PruningBounds bounds(*grown, vectors);
  std::vector<double> profile(bounds.num_pivots());
  for (int u = 0; u < 31; ++u) {
    ASSERT_TRUE(bounds.Profile(u, profile));
    for (int v = 0; v < 31; ++v) {
      const double d = vectors.Distance(u, v);
      EXPECT_LE(bounds.Lower(profile, v), d);
      EXPECT_GE(bounds.Upper(profile, v), d);
    }
  }
}

TEST(PruningIndexTest, DegenerateShapes) {
  // Empty id pool: unusable, bounds inactive, nothing crashes.
  const VectorMetric vectors = MakeVectors(10, 3, 29);
  const auto empty =
      PruningIndex::Build(vectors, std::vector<int>{}, PruningIndex::Options());
  EXPECT_FALSE(empty->usable());
  const PruningBounds inactive(*empty, vectors);
  EXPECT_FALSE(inactive.active());

  // Single id: one pivot, bounds still sound.
  const auto single = PruningIndex::Build(vectors, std::vector<int>{4},
                                          PruningIndex::Options());
  ASSERT_TRUE(single->usable());
  EXPECT_EQ(single->num_pivots(), 1);

  // All-duplicate points: the farthest-point sweep stops early instead of
  // stacking duplicate pivots.
  const VectorMetric dupes(8, 3);  // every row at the origin
  PruningIndex::Options many;
  many.num_pivots = 6;
  const auto collapsed = PruningIndex::Build(dupes, AllIds(8), many);
  ASSERT_TRUE(collapsed->usable());
  EXPECT_EQ(collapsed->num_pivots(), 1);
}

TEST(PruningIndexTest, PivotCountCappedByPool) {
  const VectorMetric vectors = MakeVectors(5, 4, 31);
  PruningIndex::Options options;
  options.num_pivots = 64;
  const auto index = PruningIndex::Build(vectors, AllIds(5), options);
  ASSERT_TRUE(index->usable());
  EXPECT_LE(index->num_pivots(), 5);
}

}  // namespace
}  // namespace diverse
