// Randomized equivalence suite for the incremental evaluation subsystem:
// every batched gain the IncrementalEvaluator reports must equal the
// corresponding brute-force DiversificationProblem::Objective delta to
// 1e-9, with the parallel scan paths forced on.
#include "core/incremental_evaluator.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <span>
#include <thread>
#include <vector>

#include "algorithms/batch_greedy.h"
#include "algorithms/greedy_edge.h"
#include "algorithms/greedy_vertex.h"
#include "algorithms/group_diversification.h"
#include "algorithms/knapsack_greedy.h"
#include "algorithms/local_search.h"
#include "algorithms/streaming.h"
#include "core/diversification_problem.h"
#include "core/solution_state.h"
#include "data/synthetic.h"
#include "dynamic/dynamic_updater.h"
#include "dynamic/perturbation.h"
#include "matroid/uniform_matroid.h"
#include "submodular/coverage_function.h"
#include "submodular/modular_function.h"
#include "util/random.h"

namespace diverse {
namespace {

// Forces the thread-parallel scan paths even at test-sized n.
IncrementalEvaluator::Options ForcedThreads() {
  IncrementalEvaluator::Options options;
  options.num_threads = 4;
  options.parallel_grain = 1;
  return options;
}

// phi(S + v) - phi(S) via two from-scratch evaluations.
double BruteAddDelta(const DiversificationProblem& problem,
                     const std::vector<int>& members, int v) {
  std::vector<int> extended = members;
  extended.push_back(v);
  return problem.Objective(extended) - problem.Objective(members);
}

double BruteRemoveDelta(const DiversificationProblem& problem,
                        const std::vector<int>& members, int v) {
  std::vector<int> reduced;
  for (int u : members) {
    if (u != v) reduced.push_back(u);
  }
  return problem.Objective(reduced) - problem.Objective(members);
}

double BruteSwapDelta(const DiversificationProblem& problem,
                      const std::vector<int>& members, int out, int in) {
  std::vector<int> swapped;
  for (int u : members) {
    if (u != out) swapped.push_back(u);
  }
  swapped.push_back(in);
  return problem.Objective(swapped) - problem.Objective(members);
}

struct Instance {
  Dataset data;
  ModularFunction weights;
  DiversificationProblem problem;

  Instance(int n, double lambda, std::uint64_t seed, Rng&& rng)
      : data(MakeUniformSynthetic(n, rng)),
        weights(data.weights),
        problem(&data.metric, &weights, lambda) {
    (void)seed;
  }
  Instance(int n, double lambda, std::uint64_t seed)
      : Instance(n, lambda, seed, Rng(seed)) {}
};

class EvaluatorFuzz : public ::testing::TestWithParam<int> {};

TEST_P(EvaluatorFuzz, GainsMatchBruteForceDeltasUnderRandomMutations) {
  Rng rng(GetParam());
  Instance inst(14, 0.3, GetParam() * 7 + 1);
  SolutionState state(&inst.problem);
  const IncrementalEvaluator eval(&state, ForcedThreads());
  for (int step = 0; step < 120; ++step) {
    const int v = rng.UniformInt(0, 13);
    if (state.Contains(v) && state.size() > 1 && state.size() < 14 &&
        rng.Uniform() < 0.3) {
      // Randomized swap with some non-member.
      int in = rng.UniformInt(0, 13);
      while (state.Contains(in)) in = rng.UniformInt(0, 13);
      EXPECT_NEAR(eval.GainOfSwap(v, in),
                  BruteSwapDelta(inst.problem, state.members(), v, in), 1e-9);
      state.Swap(v, in);
    } else if (state.Contains(v)) {
      EXPECT_NEAR(eval.GainOfRemove(v),
                  BruteRemoveDelta(inst.problem, state.members(), v), 1e-9);
      state.Remove(v);
    } else {
      EXPECT_NEAR(eval.GainOfAdd(v),
                  BruteAddDelta(inst.problem, state.members(), v), 1e-9);
      state.Add(v);
    }
    EXPECT_NEAR(eval.Objective(), inst.problem.Objective(state.members()),
                1e-9);
  }
  const IncrementalEvaluator::Stats stats = eval.stats();
  EXPECT_GT(stats.add_gain_queries + stats.swap_gain_queries, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EvaluatorFuzz, ::testing::Range(1, 11));

TEST(IncrementalEvaluatorTest, BestAddOverMatchesSequentialArgmax) {
  Instance inst(40, 0.25, 21);
  SolutionState state(&inst.problem);
  const IncrementalEvaluator eval(&state, ForcedThreads());
  for (int v : {3, 11, 27}) state.Add(v);
  const ScoredCandidate best = eval.BestAddOver(eval.Universe());
  int expected = -1;
  double expected_gain = 0.0;
  for (int u = 0; u < 40; ++u) {
    if (state.Contains(u)) continue;
    const double gain = BruteAddDelta(inst.problem, state.members(), u);
    if (expected < 0 || gain > expected_gain) {
      expected = u;
      expected_gain = gain;
    }
  }
  EXPECT_EQ(best.element, expected);
  EXPECT_NEAR(best.gain, expected_gain, 1e-9);
}

TEST(IncrementalEvaluatorTest, BestPrimeAddOverMatchesStatePrimeGain) {
  Instance inst(30, 0.4, 22);
  SolutionState state(&inst.problem);
  const IncrementalEvaluator eval(&state, ForcedThreads());
  for (int v : {1, 5}) state.Add(v);
  const ScoredCandidate best = eval.BestPrimeAddOver(eval.Universe());
  int expected = -1;
  double expected_gain = 0.0;
  for (int u = 0; u < 30; ++u) {
    if (state.Contains(u)) continue;
    const double gain = state.PrimeGain(u);
    if (expected < 0 || gain > expected_gain) {
      expected = u;
      expected_gain = gain;
    }
  }
  EXPECT_EQ(best.element, expected);
  EXPECT_NEAR(best.gain, expected_gain, 1e-12);
}

TEST(IncrementalEvaluatorTest, SwapScansMatchBruteForceDeltas) {
  Instance inst(25, 0.35, 23);
  SolutionState state(&inst.problem);
  const IncrementalEvaluator eval(&state, ForcedThreads());
  for (int v : {2, 9, 17, 21}) state.Add(v);
  std::vector<double> gains(25);
  for (int out : {2, 9, 17, 21}) {
    eval.ScoreSwapsFor(out, eval.Universe(), gains);
    for (int in = 0; in < 25; ++in) {
      if (state.Contains(in) || in == out) {
        EXPECT_EQ(gains[in], -std::numeric_limits<double>::infinity());
        continue;
      }
      EXPECT_NEAR(gains[in],
                  BruteSwapDelta(inst.problem, state.members(), out, in),
                  1e-9)
          << "swap " << out << " -> " << in;
    }
    const ScoredCandidate best = eval.BestSwapInFor(out, eval.Universe());
    ASSERT_TRUE(best.valid());
    EXPECT_NEAR(best.gain, *std::max_element(gains.begin(), gains.end()),
                1e-12);
  }
  // BestSwapOver agrees with the max over all (out, in) pairs.
  const BestSwapResult best =
      eval.BestSwapOver(state.members(), eval.Universe());
  ASSERT_TRUE(best.valid());
  double expected = -std::numeric_limits<double>::infinity();
  for (int out : state.members()) {
    for (int in = 0; in < 25; ++in) {
      if (state.Contains(in)) continue;
      expected = std::max(
          expected, BruteSwapDelta(inst.problem, state.members(), out, in));
    }
  }
  EXPECT_NEAR(best.gain, expected, 1e-9);
}

TEST(IncrementalEvaluatorTest, SwapScansWorkWithSubmodularQuality) {
  Rng rng(24);
  Dataset data = MakeUniformSynthetic(12, rng);
  std::vector<std::vector<int>> covers(12);
  for (auto& cv : covers) {
    cv = rng.SampleWithoutReplacement(8, rng.UniformInt(1, 4));
  }
  const CoverageFunction coverage(covers, std::vector<double>(8, 1.0));
  const DiversificationProblem problem(&data.metric, &coverage, 0.3);
  SolutionState state(&problem);
  const IncrementalEvaluator eval(&state, ForcedThreads());
  for (int v : {0, 4, 8}) state.Add(v);
  const double objective_before = state.objective();
  std::vector<double> gains(12);
  for (int out : {0, 4, 8}) {
    eval.ScoreSwapsFor(out, eval.Universe(), gains);
    for (int in = 0; in < 12; ++in) {
      if (state.Contains(in) || in == out) continue;
      EXPECT_NEAR(gains[in],
                  BruteSwapDelta(problem, state.members(), out, in), 1e-9);
    }
  }
  // The hoisted quality-evaluator repositioning must leave no net change.
  EXPECT_DOUBLE_EQ(state.objective(), objective_before);
  EXPECT_NEAR(state.quality_value(), coverage.Value(state.members()), 1e-9);
}

TEST(IncrementalEvaluatorTest, BestDensityAddOverRespectsBudgetAndCosts) {
  Instance inst(20, 0.2, 25);
  Rng rng(26);
  std::vector<double> costs(20);
  for (double& c : costs) c = rng.Uniform(0.5, 2.0);
  SolutionState state(&inst.problem);
  const IncrementalEvaluator eval(&state, ForcedThreads());
  state.Add(4);
  const double budget_left = 1.4;
  const ScoredCandidate best =
      eval.BestDensityAddOver(eval.Universe(), costs, budget_left);
  int expected = -1;
  double expected_density = 0.0;
  for (int u = 0; u < 20; ++u) {
    if (state.Contains(u)) continue;
    if (costs[u] > budget_left + 1e-12) continue;
    const double density = state.PrimeGain(u) / std::max(costs[u], 1e-12);
    if (expected < 0 || density > expected_density) {
      expected = u;
      expected_density = density;
    }
  }
  EXPECT_EQ(best.element, expected);
  if (expected >= 0) {
    EXPECT_NEAR(best.gain, expected_density, 1e-12);
  }
  // An empty budget admits nothing.
  EXPECT_FALSE(eval.BestDensityAddOver(eval.Universe(), costs, 0.0).valid());
}

TEST(IncrementalEvaluatorTest, BlockPrimeAddGainMatchesFromScratch) {
  Instance inst(15, 0.3, 27);
  SolutionState state(&inst.problem);
  const IncrementalEvaluator eval(&state, ForcedThreads());
  for (int v : {0, 7}) state.Add(v);
  const std::vector<int> block = {2, 5, 11};
  std::vector<int> extended = state.members();
  extended.insert(extended.end(), block.begin(), block.end());
  const double f_gain = inst.problem.quality().Value(extended) -
                        inst.problem.quality().Value(state.members());
  double dist = 0.0;
  for (std::size_t i = 0; i < block.size(); ++i) {
    dist += state.DistanceToSet(block[i]);
    for (std::size_t j = i + 1; j < block.size(); ++j) {
      dist += inst.data.metric.Distance(block[i], block[j]);
    }
  }
  const double expected = 0.5 * f_gain + inst.problem.lambda() * dist;
  EXPECT_NEAR(eval.BlockPrimeAddGain(block), expected, 1e-9);
  // No net state change.
  EXPECT_NEAR(state.objective(), inst.problem.Objective(state.members()),
              1e-9);
}

TEST(IncrementalEvaluatorTest, ScanResultsIndependentOfThreadCount) {
  Instance inst(60, 0.3, 28);
  SolutionState seq_state(&inst.problem);
  SolutionState par_state(&inst.problem);
  IncrementalEvaluator::Options sequential;
  sequential.num_threads = 1;
  const IncrementalEvaluator seq(&seq_state, sequential);
  const IncrementalEvaluator par(&par_state, ForcedThreads());
  for (int v : {10, 20, 30}) {
    seq_state.Add(v);
    par_state.Add(v);
  }
  const ScoredCandidate a = seq.BestAddOver(seq.Universe());
  const ScoredCandidate b = par.BestAddOver(par.Universe());
  EXPECT_EQ(a.element, b.element);
  EXPECT_EQ(a.gain, b.gain);  // bit-identical, not just close
  const BestSwapResult sa = seq.BestSwapOver(seq_state.members(),
                                             seq.Universe());
  const BestSwapResult sb = par.BestSwapOver(par_state.members(),
                                             par.Universe());
  EXPECT_EQ(sa.out, sb.out);
  EXPECT_EQ(sa.in, sb.in);
  EXPECT_EQ(sa.gain, sb.gain);
}

// Regression for a lazy-rebuild race: Universe() used to resize a mutable
// cache vector inside a const method, so two threads scanning the same
// (const) evaluator raced on the resize. The universe list is now built
// eagerly at construction; this test hammers Universe() and the read-only
// add scans that consume it from many threads — under TSan it fails
// loudly if the lazy rebuild ever comes back. (Swap scans stay out of the
// threaded section on purpose: BestSwapInFor scopes a quality-evaluator
// mutation, so concurrent swap scans on one evaluator instance were never
// a supported pattern — every engine query owns its own evaluator.)
TEST(IncrementalEvaluatorTest, UniverseIsSafeUnderConcurrentScans) {
  Instance inst(80, 0.3, 91);
  SolutionState state(&inst.problem);
  for (int v : {3, 17, 42, 61}) state.Add(v);
  const IncrementalEvaluator eval(&state, ForcedThreads());
  const ScoredCandidate expected_add = eval.BestAddOver(eval.Universe());
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 20; ++i) {
        const std::span<const int> universe = eval.Universe();
        ASSERT_EQ(static_cast<int>(universe.size()), 80);
        const ScoredCandidate add = eval.BestAddOver(universe);
        EXPECT_EQ(add.element, expected_add.element);
        EXPECT_EQ(add.gain, expected_add.gain);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
}

// The rewired algorithms must report objectives that equal a from-scratch
// evaluation of the sets they return.
class RewiredAlgorithmsFuzz : public ::testing::TestWithParam<int> {};

TEST_P(RewiredAlgorithmsFuzz, ReportedObjectivesMatchFromScratch) {
  const int seed = GetParam();
  Instance inst(24, 0.1 * (seed % 5) + 0.05, seed * 13 + 3);

  const AlgorithmResult greedy = GreedyVertex(inst.problem, {.p = 6});
  EXPECT_NEAR(greedy.objective, inst.problem.Objective(greedy.elements),
              1e-9);

  const AlgorithmResult greedy_pair =
      GreedyVertex(inst.problem, {.p = 6, .best_first_pair = true});
  EXPECT_NEAR(greedy_pair.objective,
              inst.problem.Objective(greedy_pair.elements), 1e-9);
  EXPECT_GE(greedy_pair.objective + 1e-9, 0.0);

  for (int p : {5, 6}) {  // odd p exercises the final-vertex path
    const AlgorithmResult edge = GreedyEdge(
        inst.problem, inst.weights, {.p = p, .best_last_vertex = true});
    EXPECT_EQ(static_cast<int>(edge.elements.size()), p);
    EXPECT_NEAR(edge.objective, inst.problem.Objective(edge.elements), 1e-9);
  }

  const AlgorithmResult batch =
      BatchGreedy(inst.problem, {.p = 6, .batch = 2});
  EXPECT_NEAR(batch.objective, inst.problem.Objective(batch.elements), 1e-9);

  const UniformMatroid matroid(24, 5);
  const AlgorithmResult ls = LocalSearch(inst.problem, matroid, {});
  EXPECT_NEAR(ls.objective, inst.problem.Objective(ls.elements), 1e-9);

  Rng rng(seed);
  std::vector<double> costs(24);
  for (double& c : costs) c = rng.Uniform(0.2, 1.5);
  KnapsackOptions knapsack;
  knapsack.costs = costs;
  knapsack.budget = 3.0;
  knapsack.seed_size = 1;
  const AlgorithmResult ks = KnapsackGreedy(inst.problem, knapsack);
  EXPECT_NEAR(ks.objective, inst.problem.Objective(ks.elements), 1e-9);

  GroupOptions group;
  group.p = 3;
  group.k = 2;
  const GroupResult groups = GroupGreedy(inst.problem, group);
  EXPECT_NEAR(groups.objective, GroupObjective(inst.problem, groups.groups),
              1e-9);

  StreamingDiversifier streaming(&inst.problem, 5);
  std::vector<int> stream(24);
  for (int i = 0; i < 24; ++i) stream[i] = i;
  rng.Shuffle(&stream);
  streaming.ObserveAll(stream);
  EXPECT_NEAR(streaming.objective(),
              inst.problem.Objective(streaming.current()), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RewiredAlgorithmsFuzz, ::testing::Range(1, 9));

// The dynamic-update path: random perturbations + oblivious updates keep
// the incremental objective equal to a from-scratch evaluation.
class DynamicPathFuzz : public ::testing::TestWithParam<int> {};

TEST_P(DynamicPathFuzz, UpdaterObjectiveMatchesFromScratch) {
  Rng rng(GetParam() * 31 + 5);
  Dataset data = MakeUniformSynthetic(16, rng);
  ModularFunction weights(data.weights);
  DiversificationProblem problem(&data.metric, &weights, 0.4);
  const AlgorithmResult initial = GreedyVertex(problem, {.p = 5});
  DynamicUpdater updater(&problem, &weights, &data.metric, initial.elements);
  for (int step = 0; step < 40; ++step) {
    const Perturbation perturbation =
        rng.Uniform() < 0.5
            ? RandomWeightPerturbation(weights, rng, 0.0, 1.0)
            : RandomDistancePerturbation(data.metric, rng, 1.0, 2.0);
    updater.ApplyAndUpdate(perturbation);
    EXPECT_NEAR(updater.objective(), problem.Objective(updater.solution()),
                1e-9)
        << "after step " << step << " (" << ToString(perturbation.type)
        << ")";
  }
  EXPECT_GE(updater.total_swaps(), 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DynamicPathFuzz, ::testing::Range(1, 11));

}  // namespace
}  // namespace diverse
