// Adversarial instances: families where the worst-case bounds bind (or
// nearly bind), confirming the algorithms are exactly as strong — and as
// weak — as the theory says.
#include <gtest/gtest.h>

#include <vector>

#include "algorithms/brute_force.h"
#include "algorithms/greedy_edge.h"
#include "algorithms/greedy_vertex.h"
#include "algorithms/local_search.h"
#include "algorithms/matching.h"
#include "core/diversification_problem.h"
#include "core/solution_state.h"
#include "matroid/uniform_matroid.h"
#include "metric/dense_metric.h"
#include "submodular/modular_function.h"
#include "submodular/set_function.h"

namespace diverse {
namespace {

// Dispersion instance where vertex greedy is lured away from the optimal
// clique: a {1, 2} metric with a planted far-apart set. The greedy ratio
// must stay within 2 (Corollary 1) but can be pushed visibly above 1.
TEST(TightnessTest, DispersionGreedyNoticeablySuboptimal) {
  // Universe: 2k elements. "Clique" C = {0..k-1} with pairwise distance 2.
  // "Star" elements k..2k-1: distance 2 to everything EXCEPT pairwise
  // distance 1 among themselves... construct so greedy's first picks go to
  // the star.
  const int k = 4;
  const int n = 2 * k;
  DenseMetric metric(n);
  for (int u = 0; u < n; ++u) {
    for (int v = u + 1; v < n; ++v) {
      const bool both_star = u >= k && v >= k;
      metric.SetDistance(u, v, both_star ? 1.0 : 2.0);
    }
  }
  const ZeroFunction zero(n);
  const DiversificationProblem problem(&metric, &zero, 1.0);
  const AlgorithmResult greedy = GreedyVertex(problem, {.p = k});
  const AlgorithmResult opt = BruteForceCardinality(problem, {.p = k});
  // OPT picks the clique: all pairs at distance 2.
  EXPECT_DOUBLE_EQ(opt.objective, 2.0 * k * (k - 1) / 2.0);
  // The bound from Corollary 1 must hold regardless.
  EXPECT_GE(greedy.objective * 2.0 + 1e-9, opt.objective);
}

// The classic greedy-vs-matching gap: Greedy A (greedy matching) commits
// to the single heaviest edge and pays for it; the exact matching
// diversifier does not.
TEST(TightnessTest, GreedyMatchingTrapVsExactMatching) {
  const int n = 4;
  DenseMetric metric(n);
  // d(0,1) slightly dominant; optimal pairs are (0,2), (1,3).
  metric.SetDistance(0, 1, 1.00);
  metric.SetDistance(0, 2, 0.99);
  metric.SetDistance(1, 3, 0.99);
  metric.SetDistance(2, 3, 0.55);
  metric.SetDistance(0, 3, 0.55);
  metric.SetDistance(1, 2, 0.55);
  const ModularFunction weights(std::vector<double>(n, 0.0));
  const DiversificationProblem problem(&metric, &weights, 1.0);
  // Both select all 4 elements (p = 4), so phi ties; the interesting
  // comparison is the matching weight itself at p = 2.
  const AlgorithmResult greedy_pair =
      GreedyEdge(problem, weights, {.p = 2});
  const AlgorithmResult exact_pair =
      MatchingDiversifier(problem, weights, {.p = 2});
  // For p = 2 both take the heaviest edge; equality expected.
  EXPECT_NEAR(greedy_pair.objective, exact_pair.objective, 1e-12);
  // Verify the metric check: this instance satisfies the triangle
  // inequality (0.55 + 0.55 >= 1.0).
  EXPECT_GE(greedy_pair.objective, 0.99);
}

// Local search can stop at half the optimum: the standard 2-approximation
// tightness shape for swap-based search on dispersion-like objectives.
// Local optima are certified by exhausting all single swaps.
TEST(TightnessTest, LocalSearchBoundIsRespectedOnAdversarialWeights) {
  // Quality-only instance (lambda = 0): LS over a uniform matroid with
  // modular weights always finds the top-p set, so ratio 1; adding a
  // dispersion trap drags it down but never below 1/2.
  const int n = 6;
  DenseMetric metric(n);
  for (int u = 0; u < n; ++u) {
    for (int v = u + 1; v < n; ++v) {
      // Two tight clusters {0,1,2} and {3,4,5}: within 1, across 2.
      const bool same = (u < 3) == (v < 3);
      metric.SetDistance(u, v, same ? 1.0 : 2.0);
    }
  }
  const ModularFunction weights({1.0, 1.0, 1.0, 0.0, 0.0, 0.0});
  const DiversificationProblem problem(&metric, &weights, 1.0);
  const UniformMatroid matroid(n, 3);
  const AlgorithmResult ls = LocalSearch(problem, matroid, {});
  const AlgorithmResult opt = BruteForceMatroid(problem, matroid);
  EXPECT_GE(ls.objective * 2.0 + 1e-9, opt.objective);
  // And with the best-pair initialization it actually reaches optimal
  // here.
  EXPECT_NEAR(ls.objective, opt.objective, 1e-9);
}

// Greedy B's non-oblivious potential matters: an oblivious vertex greedy
// (maximizing the true marginal phi_u) can do worse. We confirm the two
// rules genuinely differ on an adversarial instance.
TEST(TightnessTest, NonObliviousPotentialDiffersFromOblivious) {
  // Element 0 has huge weight but sits at the center (tiny distances);
  // elements 1..4 are far apart with moderate weights. Halving the weight
  // term makes Greedy B value distance more.
  const int n = 5;
  DenseMetric metric(n);
  for (int u = 1; u < n; ++u) {
    metric.SetDistance(0, u, 1.0);
    for (int v = u + 1; v < n; ++v) {
      metric.SetDistance(u, v, 2.0);
    }
  }
  const ModularFunction weights({2.4, 1.0, 1.0, 1.0, 1.0});
  const DiversificationProblem problem(&metric, &weights, 1.0);

  // Oblivious greedy: maximize AddGain (full weight).
  SolutionState oblivious(&problem);
  for (int step = 0; step < 3; ++step) {
    int best = -1;
    double best_gain = -1.0;
    for (int u = 0; u < n; ++u) {
      if (oblivious.Contains(u)) continue;
      if (oblivious.AddGain(u) > best_gain) {
        best_gain = oblivious.AddGain(u);
        best = u;
      }
    }
    oblivious.Add(best);
  }
  const AlgorithmResult non_oblivious = GreedyVertex(problem, {.p = 3});
  // First pick differs: oblivious takes 0 (weight 2.4 > any), Greedy B
  // takes 0 too at step 1 (1.2 > 0.5)... the divergence appears at later
  // steps through the halved weights. Assert both are valid and Greedy B
  // is at least as good here.
  EXPECT_GE(non_oblivious.objective + 1e-9, oblivious.objective());
  const AlgorithmResult opt = BruteForceCardinality(problem, {.p = 3});
  EXPECT_GE(non_oblivious.objective * 2.0 + 1e-9, opt.objective);
}

// lambda sweep sanity: at lambda = 0 diversification is pure submodular
// maximization (greedy = (e/(e-1))-approx or better); as lambda -> inf it
// approaches pure dispersion. The 2-approximation must hold across the
// whole path.
class LambdaPathSweep : public ::testing::TestWithParam<double> {};

TEST_P(LambdaPathSweep, TwoApproxAlongTheWholePath) {
  const double lambda = GetParam();
  DenseMetric metric(10);
  for (int u = 0; u < 10; ++u) {
    for (int v = u + 1; v < 10; ++v) {
      metric.SetDistance(u, v, 1.0 + ((u * 7 + v * 3) % 10) / 10.0);
    }
  }
  std::vector<double> w(10);
  for (int i = 0; i < 10; ++i) w[i] = (i * 13 % 10) / 10.0;
  const ModularFunction weights(w);
  const DiversificationProblem problem(&metric, &weights, lambda);
  const AlgorithmResult greedy = GreedyVertex(problem, {.p = 4});
  const AlgorithmResult opt = BruteForceCardinality(problem, {.p = 4});
  EXPECT_GE(greedy.objective * 2.0 + 1e-9, opt.objective) << lambda;
}

INSTANTIATE_TEST_SUITE_P(Lambdas, LambdaPathSweep,
                         ::testing::Values(0.0, 0.01, 0.1, 0.5, 1.0, 5.0,
                                           100.0));

}  // namespace
}  // namespace diverse
