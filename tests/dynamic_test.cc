#include <gtest/gtest.h>

#include <vector>

#include "algorithms/brute_force.h"
#include "algorithms/greedy_vertex.h"
#include "core/diversification_problem.h"
#include "data/synthetic.h"
#include "dynamic/dynamic_updater.h"
#include "dynamic/perturbation.h"
#include "dynamic/simulator.h"
#include "submodular/modular_function.h"
#include "util/random.h"

namespace diverse {
namespace {

TEST(PerturbationTest, WeightPerturbationClassifiesDirection) {
  Rng rng(1);
  ModularFunction weights({0.5, 0.5, 0.5});
  for (int i = 0; i < 50; ++i) {
    const Perturbation p = RandomWeightPerturbation(weights, rng, 0.0, 1.0);
    EXPECT_GE(p.u, 0);
    EXPECT_LT(p.u, 3);
    if (p.new_value >= p.old_value) {
      EXPECT_EQ(p.type, PerturbationType::kWeightIncrease);
    } else {
      EXPECT_EQ(p.type, PerturbationType::kWeightDecrease);
    }
    EXPECT_NEAR(p.delta(), std::abs(p.new_value - p.old_value), 1e-15);
  }
}

TEST(PerturbationTest, DistancePerturbationStaysMetric) {
  Rng rng(2);
  Dataset data = MakeUniformSynthetic(10, rng);
  ModularFunction weights(data.weights);
  for (int i = 0; i < 200; ++i) {
    const Perturbation p =
        RandomDistancePerturbation(data.metric, rng, 1.0, 2.0);
    ApplyPerturbation(p, &weights, &data.metric);
  }
  // Every distance still in [1,2] => still a metric.
  for (int u = 0; u < 10; ++u) {
    for (int v = u + 1; v < 10; ++v) {
      EXPECT_GE(data.metric.Distance(u, v), 1.0);
      EXPECT_LE(data.metric.Distance(u, v), 2.0);
    }
  }
}

TEST(PerturbationTest, RejectsMetricBreakingRange) {
  Rng rng(3);
  Dataset data = MakeUniformSynthetic(5, rng);
  EXPECT_DEATH(RandomDistancePerturbation(data.metric, rng, 0.1, 2.0),
               "metric");
}

TEST(PerturbationTest, ApplyWeightChangesFunction) {
  ModularFunction weights({0.3, 0.4});
  Perturbation p;
  p.type = PerturbationType::kWeightIncrease;
  p.u = 1;
  p.old_value = 0.4;
  p.new_value = 0.9;
  ApplyPerturbation(p, &weights, nullptr);
  EXPECT_DOUBLE_EQ(weights.weight(1), 0.9);
}

TEST(PerturbationTest, ToStringNames) {
  EXPECT_EQ(ToString(PerturbationType::kWeightIncrease), "weight_increase");
  EXPECT_EQ(ToString(PerturbationType::kDistanceDecrease),
            "distance_decrease");
}

TEST(RequiredUpdatesTest, SmallPerturbationNeedsOneUpdate) {
  EXPECT_EQ(RequiredUpdatesForWeightDecrease(10, 8.0, 0.5), 1);
  EXPECT_EQ(RequiredUpdatesForWeightDecrease(10, 8.0, 1.0), 1);  // == w/(p-2)
}

TEST(RequiredUpdatesTest, SmallPAlwaysOne) {
  EXPECT_EQ(RequiredUpdatesForWeightDecrease(3, 1.0, 0.99), 1);
  EXPECT_EQ(RequiredUpdatesForWeightDecrease(2, 1.0, 0.5), 1);
}

TEST(RequiredUpdatesTest, LargeDecreaseNeedsMore) {
  // p = 5, w = 1, delta = 0.9: ceil(log_{3/2}(10)) = ceil(5.68) = 6.
  EXPECT_EQ(RequiredUpdatesForWeightDecrease(5, 1.0, 0.9), 6);
}

TEST(RequiredUpdatesTest, MonotoneInDelta) {
  int prev = 0;
  for (double delta : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    const int cur = RequiredUpdatesForWeightDecrease(6, 1.0, delta);
    EXPECT_GE(cur, prev);
    prev = cur;
  }
}

struct DynamicFixture {
  Dataset data;
  ModularFunction weights;
  DiversificationProblem problem;

  explicit DynamicFixture(int n, double lambda, Rng& rng)
      : data(MakeUniformSynthetic(n, rng)),
        weights(data.weights),
        problem(&data.metric, &weights, lambda) {}
};

TEST(DynamicUpdaterTest, ObliviousUpdateOnlyImproves) {
  Rng rng(4);
  DynamicFixture fx(15, 0.2, rng);
  const AlgorithmResult greedy = GreedyVertex(fx.problem, {.p = 5});
  DynamicUpdater updater(&fx.problem, &fx.weights, &fx.data.metric,
                         greedy.elements);
  const double before = updater.objective();
  updater.ObliviousUpdate();
  EXPECT_GE(updater.objective() + 1e-12, before);
}

TEST(DynamicUpdaterTest, NoSwapAtLocalOptimum) {
  Rng rng(5);
  DynamicFixture fx(10, 0.2, rng);
  const AlgorithmResult greedy = GreedyVertex(fx.problem, {.p = 4});
  DynamicUpdater updater(&fx.problem, &fx.weights, &fx.data.metric,
                         greedy.elements);
  // Drain all improving swaps, then the rule must report no-op.
  int guard = 0;
  while (updater.ObliviousUpdate()) {
    ASSERT_LT(++guard, 100);
  }
  EXPECT_FALSE(updater.ObliviousUpdate());
}

TEST(DynamicUpdaterTest, ApplyRefreshesObjective) {
  Rng rng(6);
  DynamicFixture fx(8, 0.5, rng);
  const AlgorithmResult greedy = GreedyVertex(fx.problem, {.p = 3});
  DynamicUpdater updater(&fx.problem, &fx.weights, &fx.data.metric,
                         greedy.elements);
  Perturbation p;
  p.type = PerturbationType::kWeightIncrease;
  p.u = greedy.elements[0];
  p.old_value = fx.weights.weight(p.u);
  p.new_value = p.old_value + 2.0;
  updater.Apply(p);
  EXPECT_NEAR(updater.objective(),
              fx.problem.Objective(updater.solution()), 1e-9);
}

// Theorems 3, 5, 6: a single oblivious update maintains a 3-approximation
// after weight increases and distance changes; Theorem 4: the prescribed
// number of updates handles weight decreases. Verified against brute force
// over random perturbation traces.
class DynamicGuaranteeSweep : public ::testing::TestWithParam<int> {};

TEST_P(DynamicGuaranteeSweep, ThreeApproxMaintainedOverTrace) {
  Rng rng(GetParam());
  const int n = 12;
  const int p = 5;
  DynamicFixture fx(n, 0.2, rng);
  const AlgorithmResult greedy = GreedyVertex(fx.problem, {.p = p});
  DynamicUpdater updater(&fx.problem, &fx.weights, &fx.data.metric,
                         greedy.elements);
  for (int step = 0; step < 25; ++step) {
    const Perturbation perturbation =
        rng.Bernoulli(0.5)
            ? RandomWeightPerturbation(fx.weights, rng, 0.0, 1.0)
            : RandomDistancePerturbation(fx.data.metric, rng, 1.0, 2.0);
    updater.ApplyAndUpdate(perturbation);
    const AlgorithmResult opt = BruteForceCardinality(fx.problem, {.p = p});
    EXPECT_GE(updater.objective() * 3.0 + 1e-9, opt.objective)
        << "step " << step << " type " << ToString(perturbation.type);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DynamicGuaranteeSweep, ::testing::Range(1, 9));

TEST(DynamicUpdaterTest, WeightDecreaseBudgetRecovers) {
  // Crush the heaviest solution element to zero weight; Theorem 4's budget
  // of updates must restore a 3-approximation.
  Rng rng(30);
  const int p = 6;
  DynamicFixture fx(14, 0.2, rng);
  const AlgorithmResult greedy = GreedyVertex(fx.problem, {.p = p});
  DynamicUpdater updater(&fx.problem, &fx.weights, &fx.data.metric,
                         greedy.elements);
  int heaviest = greedy.elements[0];
  for (int e : greedy.elements) {
    if (fx.weights.weight(e) > fx.weights.weight(heaviest)) heaviest = e;
  }
  Perturbation p2;
  p2.type = PerturbationType::kWeightDecrease;
  p2.u = heaviest;
  p2.old_value = fx.weights.weight(heaviest);
  p2.new_value = 0.0;
  updater.ApplyAndUpdate(p2);
  const AlgorithmResult opt = BruteForceCardinality(fx.problem, {.p = p});
  EXPECT_GE(updater.objective() * 3.0 + 1e-9, opt.objective);
}

TEST(SimulatorTest, SmokeRunProducesSaneRatios) {
  DynamicSimulationConfig config;
  config.n = 10;
  config.p = 3;
  config.lambda = 0.2;
  config.steps = 5;
  config.runs = 3;
  config.environment = PerturbationEnvironment::kMixed;
  config.seed = 7;
  const DynamicSimulationResult result = RunDynamicSimulation(config);
  EXPECT_GE(result.worst_ratio, 1.0);
  EXPECT_LE(result.worst_ratio, 3.0 + 1e-9);  // the provable bound
  EXPECT_GE(result.mean_ratio, 1.0);
  EXPECT_LE(result.mean_ratio, result.worst_ratio + 1e-12);
  EXPECT_EQ(result.total_steps, 15);
}

TEST(SimulatorTest, EnvironmentNames) {
  EXPECT_EQ(ToString(PerturbationEnvironment::kVertex), "VPERTURBATION");
  EXPECT_EQ(ToString(PerturbationEnvironment::kEdge), "EPERTURBATION");
  EXPECT_EQ(ToString(PerturbationEnvironment::kMixed), "MPERTURBATION");
}

TEST(SimulatorTest, WorstRatiosStayFarBelowProvableBound) {
  // Paper Fig. 1 observation 1: in every environment the maintained ratio
  // stays far below the provable 3 (the paper's worst observation is about
  // 1.11 at their scale; we allow headroom for the miniature instance).
  for (double lambda : {0.1, 0.6, 2.0}) {
    DynamicSimulationConfig config;
    config.n = 10;
    config.p = 3;
    config.steps = 5;
    config.runs = 5;
    config.seed = 11;
    config.lambda = lambda;
    const double worst = RunDynamicSimulation(config).worst_ratio;
    EXPECT_GE(worst, 1.0);
    EXPECT_LE(worst, 1.5) << "lambda=" << lambda;
  }
}

}  // namespace
}  // namespace diverse
