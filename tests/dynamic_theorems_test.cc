// Per-theorem verification of the paper's §6 dynamic-update results, one
// perturbation type at a time:
//   Theorem 3 (type I,   weight increase):   1 update keeps ratio 3
//   Theorem 4 (type II,  weight decrease):   prescribed update count
//   Theorem 5 (type III, distance increase): 1 update keeps ratio 3
//   Theorem 6 (type IV,  distance decrease): 1 update keeps ratio 3
// Each test drives many random perturbations of ONLY its type and checks
// the ratio against brute-force OPT after the prescribed updates.
#include <gtest/gtest.h>

#include <vector>

#include "algorithms/brute_force.h"
#include "algorithms/greedy_vertex.h"
#include "core/diversification_problem.h"
#include "data/synthetic.h"
#include "dynamic/dynamic_updater.h"
#include "submodular/modular_function.h"
#include "util/random.h"

namespace diverse {
namespace {

struct Fixture {
  Dataset data;
  ModularFunction weights;
  DiversificationProblem problem;
  int p;

  Fixture(int n, int p_in, double lambda, Rng& rng)
      : data(MakeUniformSynthetic(n, rng)),
        weights(data.weights),
        problem(&data.metric, &weights, lambda),
        p(p_in) {}

  double Opt() {
    return BruteForceCardinality(problem, {.p = p}).objective;
  }
};

Perturbation ForcedWeightChange(const ModularFunction& weights, int u,
                                double new_value) {
  Perturbation p;
  p.u = u;
  p.old_value = weights.weight(u);
  p.new_value = new_value;
  p.type = new_value >= p.old_value ? PerturbationType::kWeightIncrease
                                    : PerturbationType::kWeightDecrease;
  return p;
}

Perturbation ForcedDistanceChange(const DenseMetric& metric, int u, int v,
                                  double new_value) {
  Perturbation p;
  p.u = u;
  p.v = v;
  p.old_value = metric.Distance(u, v);
  p.new_value = new_value;
  p.type = new_value >= p.old_value ? PerturbationType::kDistanceIncrease
                                    : PerturbationType::kDistanceDecrease;
  return p;
}

class TypeSweep : public ::testing::TestWithParam<int> {};

// Theorem 3: weight increases, including large spikes on elements outside
// the current solution (the "interesting case" s in O \ S of the proof).
TEST_P(TypeSweep, Theorem3WeightIncreaseSingleUpdate) {
  Rng rng(GetParam());
  Fixture fx(12, 5, 0.2, rng);
  const AlgorithmResult greedy = GreedyVertex(fx.problem, {.p = fx.p});
  DynamicUpdater updater(&fx.problem, &fx.weights, &fx.data.metric,
                         greedy.elements);
  for (int step = 0; step < 20; ++step) {
    const int u = rng.UniformInt(0, 11);
    // Spikes up to 3x the typical weight range stress the theorem.
    const double spike = fx.weights.weight(u) + rng.Uniform(0.0, 3.0);
    updater.Apply(ForcedWeightChange(fx.weights, u, spike));
    updater.ObliviousUpdate();
    EXPECT_GE(updater.objective() * 3.0 + 1e-9, fx.Opt()) << "step " << step;
  }
}

// Theorem 4: weight decreases handled with the prescribed number of
// updates (ApplyAndUpdate computes it from the theorem).
TEST_P(TypeSweep, Theorem4WeightDecreasePrescribedUpdates) {
  Rng rng(GetParam() + 100);
  Fixture fx(12, 6, 0.2, rng);
  const AlgorithmResult greedy = GreedyVertex(fx.problem, {.p = fx.p});
  DynamicUpdater updater(&fx.problem, &fx.weights, &fx.data.metric,
                         greedy.elements);
  for (int step = 0; step < 20; ++step) {
    const int u = rng.UniformInt(0, 11);
    const double drop = fx.weights.weight(u) * rng.Uniform(0.0, 1.0);
    updater.ApplyAndUpdate(
        ForcedWeightChange(fx.weights, u, fx.weights.weight(u) - drop));
    EXPECT_GE(updater.objective() * 3.0 + 1e-9, fx.Opt()) << "step " << step;
  }
}

// Theorem 5: distance increases (metric preserved by the [1,2] range).
TEST_P(TypeSweep, Theorem5DistanceIncreaseSingleUpdate) {
  Rng rng(GetParam() + 200);
  Fixture fx(12, 5, 0.2, rng);
  const AlgorithmResult greedy = GreedyVertex(fx.problem, {.p = fx.p});
  DynamicUpdater updater(&fx.problem, &fx.weights, &fx.data.metric,
                         greedy.elements);
  for (int step = 0; step < 20; ++step) {
    const auto pair = rng.SampleWithoutReplacement(12, 2);
    const double old = fx.data.metric.Distance(pair[0], pair[1]);
    const double incr = rng.Uniform(old, 2.0);  // stays within [1,2]
    updater.Apply(
        ForcedDistanceChange(fx.data.metric, pair[0], pair[1], incr));
    updater.ObliviousUpdate();
    EXPECT_GE(updater.objective() * 3.0 + 1e-9, fx.Opt()) << "step " << step;
  }
}

// Theorem 6: distance decreases.
TEST_P(TypeSweep, Theorem6DistanceDecreaseSingleUpdate) {
  Rng rng(GetParam() + 300);
  Fixture fx(12, 5, 0.2, rng);
  const AlgorithmResult greedy = GreedyVertex(fx.problem, {.p = fx.p});
  DynamicUpdater updater(&fx.problem, &fx.weights, &fx.data.metric,
                         greedy.elements);
  for (int step = 0; step < 20; ++step) {
    const auto pair = rng.SampleWithoutReplacement(12, 2);
    const double old = fx.data.metric.Distance(pair[0], pair[1]);
    const double decr = rng.Uniform(1.0, old);  // stays within [1,2]
    updater.Apply(
        ForcedDistanceChange(fx.data.metric, pair[0], pair[1], decr));
    updater.ObliviousUpdate();
    EXPECT_GE(updater.objective() * 3.0 + 1e-9, fx.Opt()) << "step " << step;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TypeSweep, ::testing::Range(1, 7));

// Corollary 3: for p <= 3 any perturbation is absorbed by one update.
TEST(DynamicTheoremsTest, Corollary3SmallP) {
  for (int seed = 1; seed <= 10; ++seed) {
    Rng rng(seed * 19);
    Fixture fx(10, 3, 0.2, rng);
    const AlgorithmResult greedy = GreedyVertex(fx.problem, {.p = 3});
    DynamicUpdater updater(&fx.problem, &fx.weights, &fx.data.metric,
                           greedy.elements);
    for (int step = 0; step < 10; ++step) {
      const Perturbation p =
          rng.Bernoulli(0.5)
              ? RandomWeightPerturbation(fx.weights, rng, 0.0, 1.0)
              : RandomDistancePerturbation(fx.data.metric, rng, 1.0, 2.0);
      updater.Apply(p);
      updater.ObliviousUpdate();
      EXPECT_GE(updater.objective() * 3.0 + 1e-9, fx.Opt());
    }
  }
}

// The "maintained ratio in practice" observation (§7.3): over mixed traces
// the observed ratio stays near 1, far below 3.
TEST(DynamicTheoremsTest, ObservedRatiosFarBelowBound) {
  double worst = 1.0;
  for (int seed = 1; seed <= 5; ++seed) {
    Rng rng(seed * 23);
    Fixture fx(14, 5, 0.4, rng);
    const AlgorithmResult greedy = GreedyVertex(fx.problem, {.p = 5});
    DynamicUpdater updater(&fx.problem, &fx.weights, &fx.data.metric,
                           greedy.elements);
    for (int step = 0; step < 15; ++step) {
      const Perturbation p =
          rng.Bernoulli(0.5)
              ? RandomWeightPerturbation(fx.weights, rng, 0.0, 1.0)
              : RandomDistancePerturbation(fx.data.metric, rng, 1.0, 2.0);
      updater.ApplyAndUpdate(p);
      worst = std::max(worst, fx.Opt() / updater.objective());
    }
  }
  EXPECT_LT(worst, 1.6);  // paper observes ~1.11 at its scale
}

}  // namespace
}  // namespace diverse
