// Wire-format tests (src/rpc/wire.h): randomized round-trip property
// tests for every message, and totality of decoding — truncated buffers,
// trailing garbage, wire-version and message-type mismatches, and corrupt
// enum values must all be rejected, never crash or misparse.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "engine/corpus.h"
#include "rpc/wire.h"
#include "util/random.h"

namespace diverse {
namespace rpc {
namespace {

using engine::CorpusUpdate;

ShardQueryRequest RandomRequest(Rng& rng) {
  ShardQueryRequest request;
  request.snapshot_version = rng.NextSeed();
  request.shard_salt = rng.NextSeed();
  request.num_shards = rng.UniformInt(1, 16);
  request.shard_index = rng.UniformInt(0, request.num_shards - 1);
  request.p = rng.UniformInt(0, 40);
  request.per_shard = rng.UniformInt(0, 40);
  request.lambda = rng.Bernoulli(0.5) ? rng.Uniform(0.0, 2.0) : -1.0;
  request.relevance.resize(rng.UniformInt(0, 32));
  for (double& r : request.relevance) r = rng.Uniform(0.0, 1.0);
  return request;
}

ShardQueryResponse RandomResponse(Rng& rng) {
  ShardQueryResponse response;
  response.status = static_cast<RpcStatus>(rng.UniformInt(0, 2));
  response.node_version = rng.NextSeed();
  response.shard_index = rng.UniformInt(0, 15);
  response.elements.resize(rng.UniformInt(0, 24));
  for (int& e : response.elements) e = rng.UniformInt(0, 10000);
  response.objective = rng.Uniform(-5.0, 50.0);
  response.steps = rng.UniformInt(0, 1 << 20);
  return response;
}

CorpusUpdateBatch RandomBatch(Rng& rng) {
  CorpusUpdateBatch batch;
  batch.from_version = rng.UniformInt(0, 1000);
  const int epochs = rng.UniformInt(0, 4);
  for (int i = 0; i < epochs; ++i) {
    std::vector<CorpusUpdate>& epoch = batch.epochs.emplace_back();
    const int updates = rng.UniformInt(0, 3);
    for (int j = 0; j < updates; ++j) {
      switch (rng.UniformInt(0, 3)) {
        case 0:
          epoch.push_back(CorpusUpdate::SetWeight(rng.UniformInt(0, 99),
                                                  rng.Uniform(0.0, 1.0)));
          break;
        case 1:
          epoch.push_back(CorpusUpdate::SetDistance(
              rng.UniformInt(0, 49), rng.UniformInt(50, 99),
              rng.Uniform(1.0, 2.0)));
          break;
        case 2: {
          std::vector<double> distances(rng.UniformInt(0, 8));
          for (double& d : distances) d = rng.Uniform(1.0, 2.0);
          epoch.push_back(CorpusUpdate::Insert(rng.Uniform(0.0, 1.0),
                                               std::move(distances)));
          break;
        }
        default:
          epoch.push_back(CorpusUpdate::Erase(rng.UniformInt(0, 99)));
      }
    }
  }
  return batch;
}

void ExpectEqual(const CorpusUpdate& a, const CorpusUpdate& b) {
  EXPECT_EQ(a.kind, b.kind);
  EXPECT_EQ(a.u, b.u);
  EXPECT_EQ(a.v, b.v);
  EXPECT_EQ(a.value, b.value);
  EXPECT_EQ(a.distances, b.distances);
}

TEST(RpcWireTest, RequestRoundTrip) {
  Rng rng(11);
  for (int iter = 0; iter < 100; ++iter) {
    const ShardQueryRequest original = RandomRequest(rng);
    const std::vector<std::uint8_t> payload = Encode(original);
    EXPECT_EQ(PeekType(payload), MessageType::kShardQueryRequest);
    ShardQueryRequest decoded;
    ASSERT_TRUE(Decode(payload, &decoded));
    EXPECT_EQ(decoded.snapshot_version, original.snapshot_version);
    EXPECT_EQ(decoded.shard_salt, original.shard_salt);
    EXPECT_EQ(decoded.num_shards, original.num_shards);
    EXPECT_EQ(decoded.shard_index, original.shard_index);
    EXPECT_EQ(decoded.p, original.p);
    EXPECT_EQ(decoded.per_shard, original.per_shard);
    EXPECT_EQ(decoded.lambda, original.lambda);
    EXPECT_EQ(decoded.relevance, original.relevance);
  }
}

TEST(RpcWireTest, ResponseRoundTrip) {
  Rng rng(12);
  for (int iter = 0; iter < 100; ++iter) {
    const ShardQueryResponse original = RandomResponse(rng);
    const std::vector<std::uint8_t> payload = Encode(original);
    EXPECT_EQ(PeekType(payload), MessageType::kShardQueryResponse);
    ShardQueryResponse decoded;
    ASSERT_TRUE(Decode(payload, &decoded));
    EXPECT_EQ(decoded.status, original.status);
    EXPECT_EQ(decoded.node_version, original.node_version);
    EXPECT_EQ(decoded.shard_index, original.shard_index);
    EXPECT_EQ(decoded.elements, original.elements);
    EXPECT_EQ(decoded.objective, original.objective);
    EXPECT_EQ(decoded.steps, original.steps);
  }
}

TEST(RpcWireTest, UpdateBatchRoundTrip) {
  Rng rng(13);
  for (int iter = 0; iter < 100; ++iter) {
    const CorpusUpdateBatch original = RandomBatch(rng);
    const std::vector<std::uint8_t> payload = Encode(original);
    EXPECT_EQ(PeekType(payload), MessageType::kCorpusUpdateBatch);
    CorpusUpdateBatch decoded;
    ASSERT_TRUE(Decode(payload, &decoded));
    EXPECT_EQ(decoded.from_version, original.from_version);
    EXPECT_EQ(decoded.to_version(), original.to_version());
    ASSERT_EQ(decoded.epochs.size(), original.epochs.size());
    for (std::size_t i = 0; i < original.epochs.size(); ++i) {
      ASSERT_EQ(decoded.epochs[i].size(), original.epochs[i].size());
      for (std::size_t j = 0; j < original.epochs[i].size(); ++j) {
        ExpectEqual(decoded.epochs[i][j], original.epochs[i][j]);
      }
    }
  }
}

TEST(RpcWireTest, AckRoundTrip) {
  for (RpcStatus status : {RpcStatus::kOk, RpcStatus::kVersionMismatch,
                           RpcStatus::kError}) {
    UpdateAck original;
    original.status = status;
    original.node_version = 42;
    const std::vector<std::uint8_t> payload = Encode(original);
    EXPECT_EQ(PeekType(payload), MessageType::kUpdateAck);
    UpdateAck decoded;
    ASSERT_TRUE(Decode(payload, &decoded));
    EXPECT_EQ(decoded.status, original.status);
    EXPECT_EQ(decoded.node_version, original.node_version);
  }
}

// Every strict prefix of a valid payload must be rejected — the decoder
// can never read past the buffer or accept a half message.
TEST(RpcWireTest, TruncatedPayloadsRejected) {
  Rng rng(14);
  const std::vector<std::uint8_t> request = Encode(RandomRequest(rng));
  const std::vector<std::uint8_t> response = Encode(RandomResponse(rng));
  const std::vector<std::uint8_t> batch = Encode(RandomBatch(rng));
  for (std::size_t len = 0; len < request.size(); ++len) {
    ShardQueryRequest decoded;
    EXPECT_FALSE(Decode(std::span(request.data(), len), &decoded))
        << "prefix length " << len;
  }
  for (std::size_t len = 0; len < response.size(); ++len) {
    ShardQueryResponse decoded;
    EXPECT_FALSE(Decode(std::span(response.data(), len), &decoded));
  }
  for (std::size_t len = 0; len < batch.size(); ++len) {
    CorpusUpdateBatch decoded;
    EXPECT_FALSE(Decode(std::span(batch.data(), len), &decoded));
  }
}

TEST(RpcWireTest, TrailingGarbageRejected) {
  Rng rng(15);
  std::vector<std::uint8_t> payload = Encode(RandomRequest(rng));
  payload.push_back(0);
  ShardQueryRequest decoded;
  EXPECT_FALSE(Decode(payload, &decoded));
}

TEST(RpcWireTest, WireVersionMismatchRejected) {
  Rng rng(16);
  std::vector<std::uint8_t> payload = Encode(RandomRequest(rng));
  payload[0] ^= 0xff;  // low byte of the u16 wire version
  EXPECT_EQ(PeekType(payload), std::nullopt);
  ShardQueryRequest decoded;
  EXPECT_FALSE(Decode(payload, &decoded));
}

TEST(RpcWireTest, MessageTypeMismatchRejected) {
  Rng rng(17);
  const std::vector<std::uint8_t> request = Encode(RandomRequest(rng));
  ShardQueryResponse response;
  EXPECT_FALSE(Decode(request, &response));
  CorpusUpdateBatch batch;
  EXPECT_FALSE(Decode(request, &batch));
  UpdateAck ack;
  EXPECT_FALSE(Decode(request, &ack));
}

TEST(RpcWireTest, UnknownTypeAndCorruptEnumsRejected) {
  Rng rng(18);
  std::vector<std::uint8_t> payload = Encode(RandomRequest(rng));
  payload[2] = 99;  // message type byte
  EXPECT_EQ(PeekType(payload), std::nullopt);

  std::vector<std::uint8_t> response = Encode(RandomResponse(rng));
  response[3] = 7;  // status byte out of the RpcStatus range
  ShardQueryResponse decoded_response;
  EXPECT_FALSE(Decode(response, &decoded_response));

  CorpusUpdateBatch batch;
  batch.from_version = 0;
  batch.epochs.push_back({engine::CorpusUpdate::Erase(3)});
  std::vector<std::uint8_t> encoded = Encode(batch);
  // The update's kind byte follows header(3) + from_version(8) +
  // epoch count(4) + update count(4).
  encoded[19] = 99;
  CorpusUpdateBatch decoded_batch;
  EXPECT_FALSE(Decode(encoded, &decoded_batch));
}

// A corrupt element/relevance count larger than the remaining bytes must
// fail fast instead of allocating or over-reading.
TEST(RpcWireTest, OversizedCountsRejected) {
  ShardQueryRequest request;
  request.relevance = {0.5, 0.25};
  std::vector<std::uint8_t> payload = Encode(request);
  // Relevance count sits 4 + 8 bytes from the end (count + 2 doubles
  // from the end is count offset: end - 16 - 4).
  const std::size_t count_at = payload.size() - 16 - 4;
  payload[count_at] = 0xff;
  payload[count_at + 1] = 0xff;
  payload[count_at + 2] = 0xff;
  payload[count_at + 3] = 0x7f;
  ShardQueryRequest decoded;
  EXPECT_FALSE(Decode(payload, &decoded));
}

}  // namespace
}  // namespace rpc
}  // namespace diverse
