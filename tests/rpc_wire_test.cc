// Wire-format tests (src/rpc/wire.h): randomized round-trip property
// tests for every message, and totality of decoding — truncated buffers,
// trailing garbage, wire-version and message-type mismatches, and corrupt
// enum values must all be rejected, never crash or misparse.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "engine/corpus.h"
#include "rpc/wire.h"
#include "util/random.h"

namespace diverse {
namespace rpc {
namespace {

using engine::CorpusUpdate;

ShardQueryRequest RandomRequest(Rng& rng) {
  ShardQueryRequest request;
  request.snapshot_version = rng.NextSeed();
  request.shard_salt = rng.NextSeed();
  request.trace_id = rng.Bernoulli(0.5) ? rng.NextSeed() : 0;
  request.num_shards = rng.UniformInt(1, 16);
  request.shard_index = rng.UniformInt(0, request.num_shards - 1);
  request.p = rng.UniformInt(0, 40);
  request.per_shard = rng.UniformInt(0, 40);
  request.lambda = rng.Bernoulli(0.5) ? rng.Uniform(0.0, 2.0) : -1.0;
  request.relevance.resize(rng.UniformInt(0, 32));
  for (double& r : request.relevance) r = rng.Uniform(0.0, 1.0);
  return request;
}

ShardQueryResponse RandomResponse(Rng& rng) {
  ShardQueryResponse response;
  response.status = static_cast<RpcStatus>(rng.UniformInt(0, 2));
  response.node_version = rng.NextSeed();
  response.shard_index = rng.UniformInt(0, 15);
  response.elements.resize(rng.UniformInt(0, 24));
  for (int& e : response.elements) e = rng.UniformInt(0, 10000);
  response.objective = rng.Uniform(-5.0, 50.0);
  response.steps = rng.UniformInt(0, 1 << 20);
  // v3: traced responses carry a node-side span block; untraced ones an
  // empty one. Exercise both.
  const int spans = rng.Bernoulli(0.5) ? rng.UniformInt(1, 6) : 0;
  for (int i = 0; i < spans; ++i) {
    WireSpan span;
    span.name = std::string(rng.UniformInt(1, 12), 'a' + i);
    span.start_seconds = rng.Uniform(0.0, 1.0);
    span.duration_seconds = rng.Uniform(0.0, 0.5);
    response.spans.push_back(std::move(span));
  }
  return response;
}

CorpusUpdateBatch RandomBatch(Rng& rng) {
  CorpusUpdateBatch batch;
  batch.from_version = rng.UniformInt(0, 1000);
  const int epochs = rng.UniformInt(0, 4);
  for (int i = 0; i < epochs; ++i) {
    std::vector<CorpusUpdate>& epoch = batch.epochs.emplace_back();
    const int updates = rng.UniformInt(0, 3);
    for (int j = 0; j < updates; ++j) {
      switch (rng.UniformInt(0, 4)) {
        case 0:
          epoch.push_back(CorpusUpdate::SetWeight(rng.UniformInt(0, 99),
                                                  rng.Uniform(0.0, 1.0)));
          break;
        case 1:
          epoch.push_back(CorpusUpdate::SetDistance(
              rng.UniformInt(0, 49), rng.UniformInt(50, 99),
              rng.Uniform(1.0, 2.0)));
          break;
        case 2: {
          std::vector<double> distances(rng.UniformInt(0, 8));
          for (double& d : distances) d = rng.Uniform(1.0, 2.0);
          epoch.push_back(CorpusUpdate::Insert(rng.Uniform(0.0, 1.0),
                                               std::move(distances)));
          break;
        }
        case 3: {
          // Feature-vector insert: the embedding rides the same f64 array
          // field as kInsert's distance row.
          std::vector<double> embedding(rng.UniformInt(1, 8));
          for (double& x : embedding) x = rng.Uniform(-1.0, 1.0);
          epoch.push_back(CorpusUpdate::InsertVector(rng.Uniform(0.0, 1.0),
                                                     std::move(embedding)));
          break;
        }
        default:
          epoch.push_back(CorpusUpdate::Erase(rng.UniformInt(0, 99)));
      }
    }
  }
  return batch;
}

void ExpectEqual(const CorpusUpdate& a, const CorpusUpdate& b) {
  EXPECT_EQ(a.kind, b.kind);
  EXPECT_EQ(a.u, b.u);
  EXPECT_EQ(a.v, b.v);
  EXPECT_EQ(a.value, b.value);
  EXPECT_EQ(a.distances, b.distances);
}

TEST(RpcWireTest, RequestRoundTrip) {
  Rng rng(11);
  for (int iter = 0; iter < 100; ++iter) {
    const ShardQueryRequest original = RandomRequest(rng);
    const std::vector<std::uint8_t> payload = Encode(original);
    EXPECT_EQ(PeekType(payload), MessageType::kShardQueryRequest);
    ShardQueryRequest decoded;
    ASSERT_TRUE(Decode(payload, &decoded));
    EXPECT_EQ(decoded.snapshot_version, original.snapshot_version);
    EXPECT_EQ(decoded.shard_salt, original.shard_salt);
    EXPECT_EQ(decoded.trace_id, original.trace_id);
    EXPECT_EQ(decoded.num_shards, original.num_shards);
    EXPECT_EQ(decoded.shard_index, original.shard_index);
    EXPECT_EQ(decoded.p, original.p);
    EXPECT_EQ(decoded.per_shard, original.per_shard);
    EXPECT_EQ(decoded.lambda, original.lambda);
    EXPECT_EQ(decoded.relevance, original.relevance);
  }
}

TEST(RpcWireTest, ResponseRoundTrip) {
  Rng rng(12);
  for (int iter = 0; iter < 100; ++iter) {
    const ShardQueryResponse original = RandomResponse(rng);
    const std::vector<std::uint8_t> payload = Encode(original);
    EXPECT_EQ(PeekType(payload), MessageType::kShardQueryResponse);
    ShardQueryResponse decoded;
    ASSERT_TRUE(Decode(payload, &decoded));
    EXPECT_EQ(decoded.status, original.status);
    EXPECT_EQ(decoded.node_version, original.node_version);
    EXPECT_EQ(decoded.shard_index, original.shard_index);
    EXPECT_EQ(decoded.elements, original.elements);
    EXPECT_EQ(decoded.objective, original.objective);
    EXPECT_EQ(decoded.steps, original.steps);
    ASSERT_EQ(decoded.spans.size(), original.spans.size());
    for (std::size_t i = 0; i < original.spans.size(); ++i) {
      EXPECT_EQ(decoded.spans[i].name, original.spans[i].name);
      EXPECT_EQ(decoded.spans[i].start_seconds,
                original.spans[i].start_seconds);
      EXPECT_EQ(decoded.spans[i].duration_seconds,
                original.spans[i].duration_seconds);
    }
  }
}

// The span block must survive the same totality regime as the rest of
// the wire: every strict prefix rejected, oversized counts and name
// lengths rejected, garbage offsets clamped rather than trusted, and the
// encoder must sanitize so Decode(Encode(x)) holds for ANY input spans.
TEST(RpcWireTest, ResponseSpanBlockTotality) {
  // Fixed spanned response: header(3) status(1) node_version(8)
  // shard_index(4) elem_count(4) objective(8) steps(8) span_count@36
  // name_len@40 name@44 start@45 dur@53, total 61 bytes.
  ShardQueryResponse response;
  response.status = RpcStatus::kOk;
  response.node_version = 9;
  response.shard_index = 2;
  response.objective = 1.5;
  response.steps = 17;
  response.spans.push_back({"x", 0.25, 0.125});
  const std::vector<std::uint8_t> payload = Encode(response);
  ASSERT_EQ(payload.size(), 61u);
  for (std::size_t len = 0; len < payload.size(); ++len) {
    ShardQueryResponse decoded;
    EXPECT_FALSE(Decode(std::span(payload.data(), len), &decoded))
        << "prefix length " << len;
  }

  // Span count bounded by the remaining bytes: 2^31-ish count fails fast.
  std::vector<std::uint8_t> huge_count = payload;
  huge_count[36] = 0xff;
  huge_count[37] = 0xff;
  huge_count[38] = 0xff;
  huge_count[39] = 0x7f;
  ShardQueryResponse decoded;
  EXPECT_FALSE(Decode(huge_count, &decoded));

  // Span count over the cap but with the bytes to back it: still
  // rejected. 33 zero-named spans of 20 bytes each after a zero-span
  // body.
  ShardQueryResponse empty = response;
  empty.spans.clear();
  std::vector<std::uint8_t> over_cap = Encode(empty);
  over_cap[over_cap.size() - 4] =
      static_cast<std::uint8_t>(kMaxResponseSpans + 1);
  over_cap.insert(over_cap.end(), 20 * (kMaxResponseSpans + 1), 0);
  EXPECT_FALSE(Decode(over_cap, &decoded));

  // Name length over the cap (but within the remaining bytes).
  ShardQueryResponse long_name = empty;
  long_name.spans.push_back(
      {std::string(kMaxSpanNameBytes, 'n'), 0.0, 0.0});
  std::vector<std::uint8_t> bad_name_len = Encode(long_name);
  bad_name_len[40] = static_cast<std::uint8_t>(kMaxSpanNameBytes + 1);
  EXPECT_FALSE(Decode(bad_name_len, &decoded));

  // Non-finite and negative offsets clamp to 0 at decode (a hostile peer
  // skips our sanitizing encoder).
  std::vector<std::uint8_t> garbage_offsets = payload;
  const std::uint64_t nan_bits = 0x7ff8000000000000ull;   // quiet NaN
  const std::uint64_t neg_bits = 0xbff0000000000000ull;   // -1.0
  for (int i = 0; i < 8; ++i) {
    garbage_offsets[45 + i] =
        static_cast<std::uint8_t>(nan_bits >> (8 * i));
    garbage_offsets[53 + i] =
        static_cast<std::uint8_t>(neg_bits >> (8 * i));
  }
  ASSERT_TRUE(Decode(garbage_offsets, &decoded));
  ASSERT_EQ(decoded.spans.size(), 1u);
  EXPECT_EQ(decoded.spans[0].start_seconds, 0.0);
  EXPECT_EQ(decoded.spans[0].duration_seconds, 0.0);

  // Encoder-side sanitizing: over-long names truncate, over-count spans
  // drop, garbage offsets clamp — Decode(Encode(x)) is total.
  ShardQueryResponse hostile = empty;
  for (std::size_t i = 0; i < kMaxResponseSpans + 4; ++i) {
    hostile.spans.push_back({std::string(kMaxSpanNameBytes + 7, 'z'),
                             -3.0, std::numeric_limits<double>::quiet_NaN()});
  }
  ASSERT_TRUE(Decode(Encode(hostile), &decoded));
  ASSERT_EQ(decoded.spans.size(), kMaxResponseSpans);
  EXPECT_EQ(decoded.spans[0].name.size(), kMaxSpanNameBytes);
  EXPECT_EQ(decoded.spans[0].start_seconds, 0.0);
  EXPECT_EQ(decoded.spans[0].duration_seconds, 0.0);
}

// A coordinator mid-upgrade must still read replies from nodes speaking
// the pre-span v2 layout: same body up through `steps`, no span block.
TEST(RpcWireTest, ResponseCrossVersionV2Decode) {
  ShardQueryResponse response;
  response.status = RpcStatus::kOk;
  response.node_version = 4;
  response.shard_index = 1;
  response.elements = {3, 1, 4};
  response.objective = 2.75;
  response.steps = 12;
  // Build the v2 payload from the v3 one: drop the (empty) span block's
  // count and rewrite the version header to 2.
  std::vector<std::uint8_t> v2 = Encode(response);
  v2.resize(v2.size() - 4);
  v2[0] = 2;
  v2[1] = 0;
  ShardQueryResponse decoded;
  decoded.spans.push_back({"stale", 1.0, 1.0});
  ASSERT_TRUE(Decode(v2, &decoded));
  EXPECT_EQ(decoded.status, response.status);
  EXPECT_EQ(decoded.node_version, response.node_version);
  EXPECT_EQ(decoded.elements, response.elements);
  EXPECT_EQ(decoded.objective, response.objective);
  EXPECT_EQ(decoded.steps, response.steps);
  EXPECT_TRUE(decoded.spans.empty());  // cleared, not carried over

  // v2 with trailing bytes (e.g. a span block it has no business
  // carrying) is garbage, not a negotiation.
  std::vector<std::uint8_t> v2_trailing = v2;
  v2_trailing.push_back(0);
  EXPECT_FALSE(Decode(v2_trailing, &decoded));
  // Every strict prefix of the v2 payload is still rejected.
  for (std::size_t len = 0; len < v2.size(); ++len) {
    EXPECT_FALSE(Decode(std::span(v2.data(), len), &decoded))
        << "prefix length " << len;
  }
  // Other versions get no such grace: v1 and v4 are both rejected.
  std::vector<std::uint8_t> v1 = v2;
  v1[0] = 1;
  EXPECT_FALSE(Decode(v1, &decoded));
  std::vector<std::uint8_t> v4 = v2;
  v4[0] = 4;
  EXPECT_FALSE(Decode(v4, &decoded));
}

TEST(RpcWireTest, UpdateBatchRoundTrip) {
  Rng rng(13);
  for (int iter = 0; iter < 100; ++iter) {
    const CorpusUpdateBatch original = RandomBatch(rng);
    const std::vector<std::uint8_t> payload = Encode(original);
    EXPECT_EQ(PeekType(payload), MessageType::kCorpusUpdateBatch);
    CorpusUpdateBatch decoded;
    ASSERT_TRUE(Decode(payload, &decoded));
    EXPECT_EQ(decoded.from_version, original.from_version);
    EXPECT_EQ(decoded.to_version(), original.to_version());
    ASSERT_EQ(decoded.epochs.size(), original.epochs.size());
    for (std::size_t i = 0; i < original.epochs.size(); ++i) {
      ASSERT_EQ(decoded.epochs[i].size(), original.epochs[i].size());
      for (std::size_t j = 0; j < original.epochs[i].size(); ++j) {
        ExpectEqual(decoded.epochs[i][j], original.epochs[i][j]);
      }
    }
  }
}

TEST(RpcWireTest, AckRoundTrip) {
  for (RpcStatus status : {RpcStatus::kOk, RpcStatus::kVersionMismatch,
                           RpcStatus::kError}) {
    UpdateAck original;
    original.status = status;
    original.node_version = 42;
    const std::vector<std::uint8_t> payload = Encode(original);
    EXPECT_EQ(PeekType(payload), MessageType::kUpdateAck);
    UpdateAck decoded;
    ASSERT_TRUE(Decode(payload, &decoded));
    EXPECT_EQ(decoded.status, original.status);
    EXPECT_EQ(decoded.node_version, original.node_version);
  }
}

// Every strict prefix of a valid payload must be rejected — the decoder
// can never read past the buffer or accept a half message.
TEST(RpcWireTest, TruncatedPayloadsRejected) {
  Rng rng(14);
  const std::vector<std::uint8_t> request = Encode(RandomRequest(rng));
  const std::vector<std::uint8_t> response = Encode(RandomResponse(rng));
  const std::vector<std::uint8_t> batch = Encode(RandomBatch(rng));
  for (std::size_t len = 0; len < request.size(); ++len) {
    ShardQueryRequest decoded;
    EXPECT_FALSE(Decode(std::span(request.data(), len), &decoded))
        << "prefix length " << len;
  }
  for (std::size_t len = 0; len < response.size(); ++len) {
    ShardQueryResponse decoded;
    EXPECT_FALSE(Decode(std::span(response.data(), len), &decoded));
  }
  for (std::size_t len = 0; len < batch.size(); ++len) {
    CorpusUpdateBatch decoded;
    EXPECT_FALSE(Decode(std::span(batch.data(), len), &decoded));
  }
}

TEST(RpcWireTest, TrailingGarbageRejected) {
  Rng rng(15);
  std::vector<std::uint8_t> payload = Encode(RandomRequest(rng));
  payload.push_back(0);
  ShardQueryRequest decoded;
  EXPECT_FALSE(Decode(payload, &decoded));
}

TEST(RpcWireTest, WireVersionMismatchRejected) {
  Rng rng(16);
  std::vector<std::uint8_t> payload = Encode(RandomRequest(rng));
  payload[0] ^= 0xff;  // low byte of the u16 wire version
  EXPECT_EQ(PeekType(payload), std::nullopt);
  ShardQueryRequest decoded;
  EXPECT_FALSE(Decode(payload, &decoded));
}

TEST(RpcWireTest, MessageTypeMismatchRejected) {
  Rng rng(17);
  const std::vector<std::uint8_t> request = Encode(RandomRequest(rng));
  ShardQueryResponse response;
  EXPECT_FALSE(Decode(request, &response));
  CorpusUpdateBatch batch;
  EXPECT_FALSE(Decode(request, &batch));
  UpdateAck ack;
  EXPECT_FALSE(Decode(request, &ack));
}

TEST(RpcWireTest, UnknownTypeAndCorruptEnumsRejected) {
  Rng rng(18);
  std::vector<std::uint8_t> payload = Encode(RandomRequest(rng));
  payload[2] = 99;  // message type byte
  EXPECT_EQ(PeekType(payload), std::nullopt);

  std::vector<std::uint8_t> response = Encode(RandomResponse(rng));
  response[3] = 7;  // status byte out of the RpcStatus range
  ShardQueryResponse decoded_response;
  EXPECT_FALSE(Decode(response, &decoded_response));

  CorpusUpdateBatch batch;
  batch.from_version = 0;
  batch.epochs.push_back({engine::CorpusUpdate::Erase(3)});
  std::vector<std::uint8_t> encoded = Encode(batch);
  // The update's kind byte follows header(3) + from_version(8) +
  // epoch count(4) + update count(4).
  encoded[19] = 99;
  CorpusUpdateBatch decoded_batch;
  EXPECT_FALSE(Decode(encoded, &decoded_batch));
}

// kInsertVector (kind 4) is the newest accepted update kind; the decoder
// must take it and reject exactly the first value past it.
TEST(RpcWireTest, InsertVectorKindBoundary) {
  CorpusUpdateBatch batch;
  batch.from_version = 7;
  batch.epochs.push_back(
      {engine::CorpusUpdate::InsertVector(0.5, {0.25, -0.75, 1.0})});
  std::vector<std::uint8_t> encoded = Encode(batch);
  CorpusUpdateBatch decoded;
  ASSERT_TRUE(Decode(encoded, &decoded));
  ASSERT_EQ(decoded.epochs.size(), 1u);
  ASSERT_EQ(decoded.epochs[0].size(), 1u);
  ExpectEqual(decoded.epochs[0][0], batch.epochs[0][0]);

  // Same layout, kind byte bumped one past kInsertVector: rejected.
  std::vector<std::uint8_t> unknown = encoded;
  unknown[19] = 5;
  EXPECT_FALSE(Decode(unknown, &decoded));
}

SnapshotOffer RandomOffer(Rng& rng) {
  SnapshotOffer offer;
  offer.snapshot_version = rng.NextSeed();
  offer.total_bytes = static_cast<std::uint64_t>(rng.UniformInt(1, 1 << 24));
  offer.chunk_bytes = static_cast<std::uint32_t>(rng.UniformInt(1, 1 << 20));
  offer.num_chunks = static_cast<std::uint32_t>(
      (offer.total_bytes + offer.chunk_bytes - 1) / offer.chunk_bytes);
  return offer;
}

SnapshotChunk RandomChunk(Rng& rng) {
  SnapshotChunk chunk;
  chunk.snapshot_version = rng.NextSeed();
  chunk.chunk_index = static_cast<std::uint32_t>(rng.UniformInt(0, 1 << 16));
  chunk.data.resize(rng.UniformInt(0, 64));
  for (std::uint8_t& byte : chunk.data) {
    byte = static_cast<std::uint8_t>(rng.UniformInt(0, 255));
  }
  return chunk;
}

SnapshotAck RandomSnapshotAck(Rng& rng) {
  SnapshotAck ack;
  ack.status = static_cast<RpcStatus>(rng.UniformInt(0, 2));
  ack.node_version = rng.NextSeed();
  ack.snapshot_version = rng.NextSeed();
  ack.next_chunk = static_cast<std::uint32_t>(rng.UniformInt(0, 1 << 16));
  return ack;
}

TEST(RpcWireTest, SnapshotMessagesRoundTrip) {
  Rng rng(21);
  for (int iter = 0; iter < 100; ++iter) {
    const SnapshotOffer offer = RandomOffer(rng);
    std::vector<std::uint8_t> payload = Encode(offer);
    EXPECT_EQ(PeekType(payload), MessageType::kSnapshotOffer);
    SnapshotOffer decoded_offer;
    ASSERT_TRUE(Decode(payload, &decoded_offer));
    EXPECT_EQ(decoded_offer.snapshot_version, offer.snapshot_version);
    EXPECT_EQ(decoded_offer.total_bytes, offer.total_bytes);
    EXPECT_EQ(decoded_offer.chunk_bytes, offer.chunk_bytes);
    EXPECT_EQ(decoded_offer.num_chunks, offer.num_chunks);

    const SnapshotChunk chunk = RandomChunk(rng);
    payload = Encode(chunk);
    EXPECT_EQ(PeekType(payload), MessageType::kSnapshotChunk);
    SnapshotChunk decoded_chunk;
    ASSERT_TRUE(Decode(payload, &decoded_chunk));
    EXPECT_EQ(decoded_chunk.snapshot_version, chunk.snapshot_version);
    EXPECT_EQ(decoded_chunk.chunk_index, chunk.chunk_index);
    EXPECT_EQ(decoded_chunk.data, chunk.data);

    const SnapshotAck ack = RandomSnapshotAck(rng);
    payload = Encode(ack);
    EXPECT_EQ(PeekType(payload), MessageType::kSnapshotAck);
    SnapshotAck decoded_ack;
    ASSERT_TRUE(Decode(payload, &decoded_ack));
    EXPECT_EQ(decoded_ack.status, ack.status);
    EXPECT_EQ(decoded_ack.node_version, ack.node_version);
    EXPECT_EQ(decoded_ack.snapshot_version, ack.snapshot_version);
    EXPECT_EQ(decoded_ack.next_chunk, ack.next_chunk);
  }
}

TEST(RpcWireTest, SnapshotMessagesTruncationAndGarbageRejected) {
  Rng rng(22);
  const std::vector<std::uint8_t> offer = Encode(RandomOffer(rng));
  const std::vector<std::uint8_t> chunk = Encode(RandomChunk(rng));
  const std::vector<std::uint8_t> ack = Encode(RandomSnapshotAck(rng));
  for (std::size_t len = 0; len < offer.size(); ++len) {
    SnapshotOffer decoded;
    EXPECT_FALSE(Decode(std::span(offer.data(), len), &decoded));
  }
  for (std::size_t len = 0; len < chunk.size(); ++len) {
    SnapshotChunk decoded;
    EXPECT_FALSE(Decode(std::span(chunk.data(), len), &decoded));
  }
  for (std::size_t len = 0; len < ack.size(); ++len) {
    SnapshotAck decoded;
    EXPECT_FALSE(Decode(std::span(ack.data(), len), &decoded));
  }
  std::vector<std::uint8_t> trailing = chunk;
  trailing.push_back(0);
  SnapshotChunk decoded_chunk;
  EXPECT_FALSE(Decode(trailing, &decoded_chunk));
  // Cross-type confusion and a corrupt ack status byte.
  SnapshotAck decoded_ack;
  EXPECT_FALSE(Decode(offer, &decoded_ack));
  std::vector<std::uint8_t> bad_status = ack;
  bad_status[3] = 9;
  EXPECT_FALSE(Decode(bad_status, &decoded_ack));
}

AckedTableSync RandomAckedTable(Rng& rng) {
  AckedTableSync table;
  table.acked.resize(rng.UniformInt(0, 16));
  for (std::uint64_t& version : table.acked) version = rng.NextSeed();
  return table;
}

TEST(RpcWireTest, AckedTableSyncRoundTrip) {
  Rng rng(23);
  for (int iter = 0; iter < 100; ++iter) {
    const AckedTableSync original = RandomAckedTable(rng);
    const std::vector<std::uint8_t> payload = Encode(original);
    EXPECT_EQ(PeekType(payload), MessageType::kAckedTableSync);
    AckedTableSync decoded;
    ASSERT_TRUE(Decode(payload, &decoded));
    EXPECT_EQ(decoded.acked, original.acked);
  }
}

TEST(RpcWireTest, AckedTableSyncTruncationAndGarbageRejected) {
  Rng rng(24);
  AckedTableSync table = RandomAckedTable(rng);
  table.acked.push_back(7);  // never empty, so truncation bites the body
  const std::vector<std::uint8_t> payload = Encode(table);
  for (std::size_t len = 0; len < payload.size(); ++len) {
    AckedTableSync decoded;
    EXPECT_FALSE(Decode(std::span(payload.data(), len), &decoded))
        << "prefix length " << len;
  }
  std::vector<std::uint8_t> trailing = payload;
  trailing.push_back(0);
  AckedTableSync decoded;
  EXPECT_FALSE(Decode(trailing, &decoded));
  // Cross-type confusion, and an inflated count that exceeds the
  // remaining bytes.
  UpdateAck ack;
  EXPECT_FALSE(Decode(payload, &ack));
  std::vector<std::uint8_t> bad_count = payload;
  bad_count[3] = 0xff;
  bad_count[4] = 0xff;
  bad_count[5] = 0xff;
  bad_count[6] = 0x7f;
  EXPECT_FALSE(Decode(bad_count, &decoded));
}

// A corrupt element/relevance count larger than the remaining bytes must
// fail fast instead of allocating or over-reading.
TEST(RpcWireTest, OversizedCountsRejected) {
  ShardQueryRequest request;
  request.relevance = {0.5, 0.25};
  std::vector<std::uint8_t> payload = Encode(request);
  // Relevance count sits 4 + 8 bytes from the end (count + 2 doubles
  // from the end is count offset: end - 16 - 4).
  const std::size_t count_at = payload.size() - 16 - 4;
  payload[count_at] = 0xff;
  payload[count_at + 1] = 0xff;
  payload[count_at + 2] = 0xff;
  payload[count_at + 3] = 0x7f;
  ShardQueryRequest decoded;
  EXPECT_FALSE(Decode(payload, &decoded));
}

TEST(RpcWireTest, StatsRequestRoundTrip) {
  for (StatsFormat format : {StatsFormat::kJson, StatsFormat::kPrometheus}) {
    StatsRequest original;
    original.format = format;
    const std::vector<std::uint8_t> payload = Encode(original);
    EXPECT_EQ(PeekType(payload), MessageType::kStatsRequest);
    StatsRequest decoded;
    ASSERT_TRUE(Decode(payload, &decoded));
    EXPECT_EQ(decoded.format, original.format);
  }
}

TEST(RpcWireTest, StatsResponseRoundTrip) {
  Rng rng(25);
  for (int iter = 0; iter < 100; ++iter) {
    StatsResponse original;
    original.status =
        static_cast<RpcStatus>(rng.UniformInt(0, 2));
    original.format = rng.Bernoulli(0.5) ? StatsFormat::kPrometheus
                                         : StatsFormat::kJson;
    original.text.resize(rng.UniformInt(0, 64));
    for (char& c : original.text) {
      c = static_cast<char>(rng.UniformInt(0, 255));
    }
    const std::vector<std::uint8_t> payload = Encode(original);
    EXPECT_EQ(PeekType(payload), MessageType::kStatsResponse);
    StatsResponse decoded;
    ASSERT_TRUE(Decode(payload, &decoded));
    EXPECT_EQ(decoded.status, original.status);
    EXPECT_EQ(decoded.format, original.format);
    EXPECT_EQ(decoded.text, original.text);
  }
}

TEST(RpcWireTest, StatsMessagesTruncationAndGarbageRejected) {
  StatsRequest request;
  request.format = StatsFormat::kPrometheus;
  const std::vector<std::uint8_t> encoded_request = Encode(request);
  for (std::size_t len = 0; len < encoded_request.size(); ++len) {
    StatsRequest decoded;
    EXPECT_FALSE(Decode(std::span(encoded_request.data(), len), &decoded))
        << "prefix length " << len;
  }
  StatsResponse response;
  response.status = RpcStatus::kOk;
  response.format = StatsFormat::kJson;
  response.text = "{\"counters\":{}}";
  const std::vector<std::uint8_t> encoded_response = Encode(response);
  for (std::size_t len = 0; len < encoded_response.size(); ++len) {
    StatsResponse decoded;
    EXPECT_FALSE(Decode(std::span(encoded_response.data(), len), &decoded))
        << "prefix length " << len;
  }
  std::vector<std::uint8_t> trailing = encoded_request;
  trailing.push_back(0);
  StatsRequest decoded_request;
  EXPECT_FALSE(Decode(trailing, &decoded_request));
  trailing = encoded_response;
  trailing.push_back(0);
  StatsResponse decoded_response;
  EXPECT_FALSE(Decode(trailing, &decoded_response));
}

TEST(RpcWireTest, StatsMessagesCorruptEnumsRejected) {
  StatsRequest request;
  request.format = StatsFormat::kJson;
  std::vector<std::uint8_t> encoded_request = Encode(request);
  encoded_request[3] = 9;  // format byte out of the StatsFormat range
  StatsRequest decoded_request;
  EXPECT_FALSE(Decode(encoded_request, &decoded_request));

  StatsResponse response;
  response.status = RpcStatus::kOk;
  response.format = StatsFormat::kPrometheus;
  response.text = "x 1\n";
  std::vector<std::uint8_t> corrupt_status = Encode(response);
  corrupt_status[3] = 7;  // status byte out of the RpcStatus range
  StatsResponse decoded_response;
  EXPECT_FALSE(Decode(corrupt_status, &decoded_response));
  std::vector<std::uint8_t> corrupt_format = Encode(response);
  corrupt_format[4] = 9;  // format byte follows the status byte
  EXPECT_FALSE(Decode(corrupt_format, &decoded_response));

  // Cross-type confusion both ways.
  StatsRequest as_request;
  EXPECT_FALSE(Decode(Encode(response), &as_request));
  EXPECT_FALSE(Decode(Encode(request), &decoded_response));
}

// A corrupt text length larger than the remaining bytes must fail fast
// instead of allocating or over-reading.
TEST(RpcWireTest, StatsResponseOversizedTextRejected) {
  StatsResponse response;
  response.status = RpcStatus::kOk;
  response.format = StatsFormat::kPrometheus;
  response.text = "diverse_node_queries_total 3\n";
  std::vector<std::uint8_t> payload = Encode(response);
  // Text length sits right after header(3) + status(1) + format(1).
  payload[5] = 0xff;
  payload[6] = 0xff;
  payload[7] = 0xff;
  payload[8] = 0x7f;
  StatsResponse decoded;
  EXPECT_FALSE(Decode(payload, &decoded));
}

}  // namespace
}  // namespace rpc
}  // namespace diverse
