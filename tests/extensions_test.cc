// Tests for the extension modules: graph metric, truncated matroid, the
// extra submodular families, alternative dispersion criteria, CSV IO,
// batch greedy, partial enumeration, and the O(1) incremental dynamic
// cache updates.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "algorithms/batch_greedy.h"
#include "algorithms/brute_force.h"
#include "algorithms/greedy_vertex.h"
#include "algorithms/local_search.h"
#include "algorithms/partial_enumeration.h"
#include "core/solution_state.h"
#include "data/csv_io.h"
#include "data/synthetic.h"
#include "dispersion/dispersion.h"
#include "dynamic/dynamic_updater.h"
#include "matroid/matroid_validation.h"
#include "matroid/partition_matroid.h"
#include "matroid/truncated_matroid.h"
#include "metric/graph_metric.h"
#include "metric/metric_validation.h"
#include "submodular/function_validation.h"
#include "submodular/modular_function.h"
#include "submodular/probabilistic_coverage.h"
#include "submodular/saturated_coverage.h"
#include "util/random.h"

namespace diverse {
namespace {

// ---------------------------------------------------------------- graph --
TEST(GraphMetricTest, PathGraphDistances) {
  // 0 -1- 1 -2- 2: d(0,2) = 3 via the path.
  const GraphMetric m(3, {{0, 1, 1.0}, {1, 2, 2.0}});
  EXPECT_DOUBLE_EQ(m.Distance(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(m.Distance(1, 2), 2.0);
  EXPECT_DOUBLE_EQ(m.Distance(0, 2), 3.0);
}

TEST(GraphMetricTest, ShortcutBeatsDirectEdge) {
  const GraphMetric m(3, {{0, 1, 1.0}, {1, 2, 1.0}, {0, 2, 5.0}});
  EXPECT_DOUBLE_EQ(m.Distance(0, 2), 2.0);
}

TEST(GraphMetricTest, ParallelEdgesKeepLighter) {
  const GraphMetric m(2, {{0, 1, 3.0}, {0, 1, 1.5}});
  EXPECT_DOUBLE_EQ(m.Distance(0, 1), 1.5);
}

TEST(GraphMetricTest, ShortestPathsAreAlwaysMetric) {
  for (int seed = 1; seed <= 10; ++seed) {
    Rng rng(seed);
    const int n = 12;
    std::vector<WeightedEdge> edges;
    // Random connected graph: a random spanning path plus extras.
    for (int v = 1; v < n; ++v) {
      edges.push_back({v - 1, v, rng.Uniform(0.5, 2.0)});
    }
    for (int e = 0; e < 12; ++e) {
      const auto pair = rng.SampleWithoutReplacement(n, 2);
      edges.push_back({pair[0], pair[1], rng.Uniform(0.5, 2.0)});
    }
    const GraphMetric m(n, edges);
    EXPECT_TRUE(ValidateMetric(m, 1e-9).IsMetric());
  }
}

TEST(GraphMetricTest, DisconnectedGraphIsRejected) {
  EXPECT_DEATH(GraphMetric(3, {{0, 1, 1.0}}), "connected");
}

// ------------------------------------------------------------ truncation --
TEST(TruncatedMatroidTest, CapsIndependentSetSize) {
  const PartitionMatroid base({0, 0, 1, 1, 2, 2}, {2, 2, 2});
  const TruncatedMatroid truncated(&base, 3);
  EXPECT_EQ(truncated.rank(), 3);
  EXPECT_TRUE(truncated.IsIndependent(std::vector<int>{0, 2, 4}));
  EXPECT_FALSE(truncated.IsIndependent(std::vector<int>{0, 1, 2, 4}));
  // Still respects the base constraint below the cap.
  EXPECT_TRUE(base.IsIndependent(std::vector<int>{0, 1, 2}));
  EXPECT_TRUE(truncated.IsIndependent(std::vector<int>{0, 1, 2}));
}

TEST(TruncatedMatroidTest, IsAMatroid) {
  const PartitionMatroid base({0, 0, 0, 1, 1, 1}, {2, 3});
  const TruncatedMatroid truncated(&base, 3);
  EXPECT_TRUE(ValidateMatroid(truncated).IsMatroid());
}

TEST(TruncatedMatroidTest, LocalSearchUnderTruncation) {
  Rng rng(3);
  Dataset data = MakeUniformSynthetic(10, rng);
  const ModularFunction weights(data.weights);
  const DiversificationProblem problem(&data.metric, &weights, 0.2);
  const PartitionMatroid base({0, 0, 0, 0, 0, 1, 1, 1, 1, 1}, {3, 3});
  const TruncatedMatroid truncated(&base, 4);
  const AlgorithmResult ls = LocalSearch(problem, truncated, {});
  EXPECT_EQ(static_cast<int>(ls.elements.size()), 4);
  EXPECT_TRUE(truncated.IsIndependent(ls.elements));
  const AlgorithmResult opt = BruteForceMatroid(problem, truncated);
  EXPECT_GE(ls.objective * 2.0 + 1e-9, opt.objective);
}

// ------------------------------------------------- submodular extensions --
TEST(ProbabilisticCoverageTest, KnownValues) {
  // One topic, weight 10; two elements with p = 0.5 each.
  const ProbabilisticCoverageFunction f({{0.5}, {0.5}}, {10.0});
  EXPECT_DOUBLE_EQ(f.Value(std::vector<int>{0}), 5.0);
  EXPECT_DOUBLE_EQ(f.Value(std::vector<int>{0, 1}), 7.5);
  EXPECT_DOUBLE_EQ(f.MarginalGain(std::vector<int>{0}, 1), 2.5);
}

TEST(ProbabilisticCoverageTest, IsMonotoneSubmodular) {
  Rng rng(4);
  std::vector<std::vector<double>> prob(8, std::vector<double>(5));
  for (auto& row : prob) {
    for (double& p : row) p = rng.Uniform(0.0, 1.0);
  }
  std::vector<double> w(5);
  for (double& x : w) x = rng.Uniform(0.2, 1.5);
  const ProbabilisticCoverageFunction f(prob, w);
  EXPECT_TRUE(ValidateFunctionExhaustive(f, 1e-7).IsMonotoneSubmodular());
}

TEST(ProbabilisticCoverageTest, CertainCoverageHandled) {
  // p == 1 would break Remove; the constructor caps it just below 1.
  const ProbabilisticCoverageFunction f({{1.0}}, {4.0});
  auto eval = f.MakeEvaluator();
  eval->Add(0);
  EXPECT_NEAR(eval->value(), 4.0, 1e-6);
  eval->Remove(0);
  EXPECT_NEAR(eval->value(), 0.0, 1e-6);
}

TEST(SaturatedCoverageTest, SaturatesAtAlphaFraction) {
  // One client; total similarity 10, alpha 0.4 -> cap 4.
  const SaturatedCoverageFunction f({{3.0, 3.0, 4.0}}, 0.4);
  EXPECT_DOUBLE_EQ(f.Value(std::vector<int>{0}), 3.0);
  EXPECT_DOUBLE_EQ(f.Value(std::vector<int>{0, 1}), 4.0);  // capped
  EXPECT_DOUBLE_EQ(f.Value(std::vector<int>{0, 1, 2}), 4.0);
  EXPECT_DOUBLE_EQ(f.MarginalGain(std::vector<int>{0}, 2), 1.0);
}

TEST(SaturatedCoverageTest, IsMonotoneSubmodular) {
  Rng rng(5);
  std::vector<std::vector<double>> sim(6, std::vector<double>(8));
  for (auto& row : sim) {
    for (double& s : row) s = rng.Uniform(0.0, 1.0);
  }
  const SaturatedCoverageFunction f(sim, 0.35);
  EXPECT_TRUE(ValidateFunctionExhaustive(f).IsMonotoneSubmodular());
}

// -------------------------------------------------------- dispersion alt --
TEST(DispersionTest, MinPairwiseAndMst) {
  DenseMetric m(4);
  m.SetDistance(0, 1, 1.0);
  m.SetDistance(0, 2, 2.0);
  m.SetDistance(0, 3, 3.0);
  m.SetDistance(1, 2, 4.0);
  m.SetDistance(1, 3, 5.0);
  m.SetDistance(2, 3, 6.0);
  const std::vector<int> all = {0, 1, 2, 3};
  EXPECT_DOUBLE_EQ(MinPairwiseDistance(m, all), 1.0);
  // MST: edges 0-1 (1), 0-2 (2), 0-3 (3) => 6.
  EXPECT_DOUBLE_EQ(MstWeight(m, all), 6.0);
  EXPECT_DOUBLE_EQ(MstWeight(m, std::vector<int>{2}), 0.0);
}

TEST(DispersionTest, MaxMinGreedyWithinFactorTwo) {
  // The farthest-point greedy is a 2-approximation for metric max-min
  // dispersion; check against exact on random instances.
  for (int seed = 1; seed <= 10; ++seed) {
    Rng rng(seed * 3);
    Dataset data = MakeUniformSynthetic(14, rng);
    for (int p : {3, 5}) {
      const AlgorithmResult greedy = MaxMinDispersionGreedy(data.metric, p);
      const AlgorithmResult exact = MaxMinDispersionExact(data.metric, p);
      EXPECT_GE(greedy.objective * 2.0 + 1e-9, exact.objective)
          << "seed " << seed << " p " << p;
      EXPECT_EQ(static_cast<int>(greedy.elements.size()), p);
    }
  }
}

TEST(DispersionTest, MaxMstGreedyProducesSpanningSelection) {
  Rng rng(9);
  Dataset data = MakeUniformSynthetic(20, rng);
  const AlgorithmResult result = MaxMstDispersionGreedy(data.metric, 6);
  EXPECT_EQ(result.elements.size(), 6u);
  EXPECT_GT(result.objective, 0.0);
  EXPECT_NEAR(result.objective, MstWeight(data.metric, result.elements),
              1e-12);
}

TEST(DispersionTest, DegenerateSizes) {
  Rng rng(10);
  Dataset data = MakeUniformSynthetic(5, rng);
  EXPECT_TRUE(MaxMinDispersionGreedy(data.metric, 0).elements.empty());
  EXPECT_EQ(MaxMinDispersionGreedy(data.metric, 1).elements.size(), 1u);
  EXPECT_EQ(MaxMinDispersionGreedy(data.metric, 99).elements.size(), 5u);
}

// ---------------------------------------------------------------- csv io --
TEST(CsvIoTest, SaveLoadRoundTrip) {
  Rng rng(11);
  const Dataset original = MakeUniformSynthetic(9, rng);
  const std::string path = ::testing::TempDir() + "/diverse_roundtrip.csv";
  ASSERT_TRUE(SaveDatasetCsv(path, original));
  const auto loaded = LoadDatasetCsv(path);
  ASSERT_TRUE(loaded.has_value());
  ASSERT_EQ(loaded->size(), 9);
  for (int i = 0; i < 9; ++i) {
    EXPECT_NEAR(loaded->weights[i], original.weights[i], 1e-9);
    for (int j = 0; j < 9; ++j) {
      EXPECT_NEAR(loaded->metric.Distance(i, j),
                  original.metric.Distance(i, j), 1e-9);
    }
  }
  std::remove(path.c_str());
}

TEST(CsvIoTest, RejectsMissingFile) {
  EXPECT_FALSE(LoadDatasetCsv("/nonexistent/nowhere.csv").has_value());
}

TEST(CsvIoTest, RejectsAsymmetricMatrix) {
  const std::string path = ::testing::TempDir() + "/diverse_bad.csv";
  FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fputs("2\n1,2\n0,1\n2,0\n", f);  // d(0,1)=1 but d(1,0)=2
  std::fclose(f);
  EXPECT_FALSE(LoadDatasetCsv(path).has_value());
  std::remove(path.c_str());
}

TEST(CsvIoTest, LoadPointsHandlesCommentsAndBlanks) {
  const std::string path = ::testing::TempDir() + "/diverse_points.csv";
  FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fputs("# points\n1.0,2.0\n\n3.0,4.0\n", f);
  std::fclose(f);
  const auto points = LoadPointsCsv(path);
  ASSERT_TRUE(points.has_value());
  ASSERT_EQ(points->size(), 2u);
  EXPECT_DOUBLE_EQ((*points)[1][1], 4.0);
  std::remove(path.c_str());
}

TEST(CsvIoTest, RejectsRaggedPoints) {
  const std::string path = ::testing::TempDir() + "/diverse_ragged.csv";
  FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fputs("1.0,2.0\n3.0\n", f);
  std::fclose(f);
  EXPECT_FALSE(LoadPointsCsv(path).has_value());
  std::remove(path.c_str());
}

// ----------------------------------------------------------- batch greedy --
TEST(BatchGreedyTest, BatchOneMatchesGreedyVertex) {
  Rng rng(12);
  Dataset data = MakeUniformSynthetic(15, rng);
  const ModularFunction weights(data.weights);
  const DiversificationProblem problem(&data.metric, &weights, 0.2);
  const AlgorithmResult batch = BatchGreedy(problem, {.p = 5, .batch = 1});
  const AlgorithmResult vertex = GreedyVertex(problem, {.p = 5});
  EXPECT_EQ(batch.elements, vertex.elements);
  EXPECT_NEAR(batch.objective, vertex.objective, 1e-9);
}

TEST(BatchGreedyTest, SelectsExactlyPForAllBatches) {
  Rng rng(13);
  Dataset data = MakeUniformSynthetic(12, rng);
  const ModularFunction weights(data.weights);
  const DiversificationProblem problem(&data.metric, &weights, 0.2);
  for (int d : {1, 2, 3}) {
    for (int p : {4, 5, 7}) {
      const AlgorithmResult result =
          BatchGreedy(problem, {.p = p, .batch = d});
      EXPECT_EQ(static_cast<int>(result.elements.size()), p)
          << "d=" << d << " p=" << p;
      EXPECT_NEAR(result.objective, problem.Objective(result.elements),
                  1e-9);
    }
  }
}

TEST(BatchGreedyTest, DispersionBoundFormula) {
  EXPECT_DOUBLE_EQ(BatchGreedyDispersionBound(10, 1), 2.0);
  EXPECT_NEAR(BatchGreedyDispersionBound(10, 2), 18.0 / 10.0, 1e-12);
  EXPECT_NEAR(BatchGreedyDispersionBound(4, 3), 6.0 / 5.0, 1e-12);
}

TEST(BatchGreedyTest, LargerBatchesRespectTheirTighterBound) {
  // Birnbaum–Goldman: batch-d greedy is a (2p-2)/(p+d-2) approximation for
  // dispersion. Check on random instances against brute force.
  for (int seed = 1; seed <= 8; ++seed) {
    Rng rng(seed * 7);
    Dataset data = MakeUniformSynthetic(12, rng);
    const ZeroFunction zero(12);
    const DiversificationProblem problem(&data.metric, &zero, 1.0);
    const int p = 6;
    const AlgorithmResult opt = BruteForceCardinality(problem, {.p = p});
    for (int d : {1, 2, 3}) {
      const AlgorithmResult result =
          BatchGreedy(problem, {.p = p, .batch = d});
      EXPECT_GE(result.objective * BatchGreedyDispersionBound(p, d) + 1e-9,
                opt.objective)
          << "seed " << seed << " d " << d;
    }
  }
}

// ---------------------------------------------------- partial enumeration --
TEST(PartialEnumerationTest, SeedZeroMatchesGreedy) {
  Rng rng(14);
  Dataset data = MakeUniformSynthetic(12, rng);
  const ModularFunction weights(data.weights);
  const DiversificationProblem problem(&data.metric, &weights, 0.2);
  const AlgorithmResult pe =
      PartialEnumerationGreedy(problem, {.p = 5, .seed_size = 0});
  const AlgorithmResult greedy = GreedyVertex(problem, {.p = 5});
  EXPECT_NEAR(pe.objective, greedy.objective, 1e-9);
}

TEST(PartialEnumerationTest, LargerSeedsNeverHurt) {
  for (int seed = 1; seed <= 8; ++seed) {
    Rng rng(seed * 11);
    Dataset data = MakeUniformSynthetic(12, rng);
    const ModularFunction weights(data.weights);
    const DiversificationProblem problem(&data.metric, &weights, 0.2);
    double prev = -1.0;
    for (int d : {0, 1, 2}) {
      const AlgorithmResult result =
          PartialEnumerationGreedy(problem, {.p = 5, .seed_size = d});
      EXPECT_GE(result.objective + 1e-9, prev) << "seed " << seed;
      prev = result.objective;
    }
  }
}

TEST(PartialEnumerationTest, ClosesInOnOptimum) {
  Rng rng(15);
  Dataset data = MakeUniformSynthetic(11, rng);
  const ModularFunction weights(data.weights);
  const DiversificationProblem problem(&data.metric, &weights, 0.2);
  const AlgorithmResult pe =
      PartialEnumerationGreedy(problem, {.p = 4, .seed_size = 2});
  const AlgorithmResult opt = BruteForceCardinality(problem, {.p = 4});
  EXPECT_GE(pe.objective, 0.98 * opt.objective);
}

// ------------------------------------------------ incremental dyn updates --
TEST(IncrementalUpdateTest, DistancePatchMatchesRebuild) {
  Rng rng(16);
  Dataset data = MakeUniformSynthetic(12, rng);
  const ModularFunction weights(data.weights);
  const DiversificationProblem problem(&data.metric, &weights, 0.3);
  SolutionState state(&problem);
  for (int v : {1, 4, 7, 9}) state.Add(v);

  for (int trial = 0; trial < 50; ++trial) {
    const auto pair = rng.SampleWithoutReplacement(12, 2);
    const double old_value = data.metric.Distance(pair[0], pair[1]);
    const double new_value = rng.Uniform(1.0, 2.0);
    data.metric.SetDistance(pair[0], pair[1], new_value);
    state.ApplyDistanceUpdate(pair[0], pair[1], old_value, new_value);

    SolutionState reference(&problem);
    reference.Assign(state.members());
    EXPECT_NEAR(state.objective(), reference.objective(), 1e-9);
    for (int x = 0; x < 12; ++x) {
      EXPECT_NEAR(state.DistanceToSet(x), reference.DistanceToSet(x), 1e-9);
    }
  }
}

TEST(IncrementalUpdateTest, QualityRefreshMatchesRebuild) {
  Rng rng(17);
  Dataset data = MakeUniformSynthetic(10, rng);
  ModularFunction weights(data.weights);
  const DiversificationProblem problem(&data.metric, &weights, 0.2);
  SolutionState state(&problem);
  for (int v : {0, 3, 6}) state.Add(v);

  weights.SetWeight(3, 0.99);
  weights.SetWeight(8, 0.01);  // not in S; no effect on value
  state.RefreshQuality();
  SolutionState reference(&problem);
  reference.Assign(state.members());
  EXPECT_NEAR(state.objective(), reference.objective(), 1e-12);
  EXPECT_NEAR(state.quality_value(), reference.quality_value(), 1e-12);
}

TEST(IncrementalUpdateTest, UpdaterStaysConsistentOverLongTrace) {
  Rng rng(18);
  Dataset data = MakeUniformSynthetic(15, rng);
  ModularFunction weights(data.weights);
  const DiversificationProblem problem(&data.metric, &weights, 0.2);
  const AlgorithmResult greedy = GreedyVertex(problem, {.p = 5});
  DynamicUpdater updater(&problem, &weights, &data.metric, greedy.elements);
  for (int step = 0; step < 100; ++step) {
    const Perturbation perturbation =
        rng.Bernoulli(0.5)
            ? RandomWeightPerturbation(weights, rng, 0.0, 1.0)
            : RandomDistancePerturbation(data.metric, rng, 1.0, 2.0);
    updater.ApplyAndUpdate(perturbation);
    EXPECT_NEAR(updater.objective(),
                problem.Objective(updater.solution()), 1e-8)
        << "step " << step;
  }
}

}  // namespace
}  // namespace diverse
