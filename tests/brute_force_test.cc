#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "algorithms/brute_force.h"
#include "core/diversification_problem.h"
#include "data/synthetic.h"
#include "matroid/partition_matroid.h"
#include "matroid/uniform_matroid.h"
#include "submodular/coverage_function.h"
#include "submodular/modular_function.h"
#include "util/random.h"

namespace diverse {
namespace {

// Reference: dumbest possible enumeration via combinations.
AlgorithmResult ReferenceOptimal(const DiversificationProblem& problem,
                                 int p) {
  const int n = problem.size();
  std::vector<bool> pick(n, false);
  std::fill(pick.begin(), pick.begin() + p, true);
  AlgorithmResult best;
  best.objective = -1.0;
  do {
    std::vector<int> s;
    for (int i = 0; i < n; ++i) {
      if (pick[i]) s.push_back(i);
    }
    const double value = problem.Objective(s);
    if (value > best.objective) {
      best.objective = value;
      best.elements = s;
    }
  } while (std::prev_permutation(pick.begin(), pick.end()));
  return best;
}

TEST(BruteForceTest, MatchesReferenceEnumeration) {
  for (int seed = 1; seed <= 5; ++seed) {
    Rng rng(seed);
    Dataset data = MakeUniformSynthetic(9, rng);
    const ModularFunction weights(data.weights);
    const DiversificationProblem problem(&data.metric, &weights, 0.2);
    for (int p : {1, 2, 4, 8, 9}) {
      const AlgorithmResult fast = BruteForceCardinality(problem, {.p = p});
      const AlgorithmResult ref = ReferenceOptimal(problem, p);
      EXPECT_NEAR(fast.objective, ref.objective, 1e-9)
          << "seed=" << seed << " p=" << p;
      EXPECT_EQ(static_cast<int>(fast.elements.size()), p);
    }
  }
}

TEST(BruteForceTest, PruningDoesNotChangeTheAnswer) {
  for (int seed = 10; seed <= 14; ++seed) {
    Rng rng(seed);
    Dataset data = MakeUniformSynthetic(12, rng);
    const ModularFunction weights(data.weights);
    const DiversificationProblem problem(&data.metric, &weights, 0.3);
    const AlgorithmResult pruned =
        BruteForceCardinality(problem, {.p = 5, .prune = true});
    const AlgorithmResult full =
        BruteForceCardinality(problem, {.p = 5, .prune = false});
    EXPECT_NEAR(pruned.objective, full.objective, 1e-9);
    EXPECT_LE(pruned.steps, full.steps);
  }
}

TEST(BruteForceTest, WorksWithSubmodularQuality) {
  Rng rng(20);
  Dataset data = MakeUniformSynthetic(8, rng);
  std::vector<std::vector<int>> covers(8);
  for (auto& cv : covers) {
    cv = rng.SampleWithoutReplacement(6, rng.UniformInt(1, 3));
  }
  const CoverageFunction coverage(covers, std::vector<double>(6, 1.0));
  const DiversificationProblem problem(&data.metric, &coverage, 0.2);
  const AlgorithmResult fast = BruteForceCardinality(problem, {.p = 3});
  const AlgorithmResult ref = ReferenceOptimal(problem, 3);
  EXPECT_NEAR(fast.objective, ref.objective, 1e-9);
}

TEST(BruteForceTest, PEqualsZero) {
  Rng rng(21);
  Dataset data = MakeUniformSynthetic(5, rng);
  const ModularFunction weights(data.weights);
  const DiversificationProblem problem(&data.metric, &weights, 0.2);
  const AlgorithmResult result = BruteForceCardinality(problem, {.p = 0});
  EXPECT_TRUE(result.elements.empty());
  EXPECT_DOUBLE_EQ(result.objective, 0.0);
}

TEST(BruteForceTest, PEqualsNTakesEverything) {
  Rng rng(22);
  Dataset data = MakeUniformSynthetic(6, rng);
  const ModularFunction weights(data.weights);
  const DiversificationProblem problem(&data.metric, &weights, 0.2);
  const AlgorithmResult result = BruteForceCardinality(problem, {.p = 6});
  EXPECT_EQ(result.elements.size(), 6u);
}

TEST(BruteForceMatroidTest, MatchesCardinalityOnUniform) {
  Rng rng(23);
  Dataset data = MakeUniformSynthetic(9, rng);
  const ModularFunction weights(data.weights);
  const DiversificationProblem problem(&data.metric, &weights, 0.2);
  const UniformMatroid matroid(9, 4);
  const AlgorithmResult via_matroid = BruteForceMatroid(problem, matroid);
  const AlgorithmResult via_card = BruteForceCardinality(problem, {.p = 4});
  EXPECT_NEAR(via_matroid.objective, via_card.objective, 1e-9);
}

TEST(BruteForceMatroidTest, RespectsPartitionConstraint) {
  Rng rng(24);
  Dataset data = MakeUniformSynthetic(8, rng);
  const ModularFunction weights(data.weights);
  const DiversificationProblem problem(&data.metric, &weights, 0.2);
  const PartitionMatroid matroid({0, 0, 0, 0, 1, 1, 1, 1}, {1, 2});
  const AlgorithmResult result = BruteForceMatroid(problem, matroid);
  EXPECT_EQ(static_cast<int>(result.elements.size()), matroid.rank());
  EXPECT_TRUE(matroid.IsIndependent(result.elements));
}

}  // namespace
}  // namespace diverse
