// Cross-module integration tests: full experiment pipelines at reduced
// scale, exercising data generation -> algorithms -> reporting exactly the
// way the bench binaries do.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <vector>

#include "algorithms/brute_force.h"
#include "algorithms/greedy_edge.h"
#include "algorithms/greedy_vertex.h"
#include "algorithms/local_search.h"
#include "core/diversification_problem.h"
#include "data/letor_sim.h"
#include "data/synthetic.h"
#include "dynamic/simulator.h"
#include "matroid/uniform_matroid.h"
#include "metric/metric_validation.h"
#include "submodular/coverage_function.h"
#include "submodular/mixture_function.h"
#include "submodular/modular_function.h"
#include "util/random.h"
#include "util/table.h"

namespace diverse {
namespace {

// A miniature Table 1: synthetic data, OPT vs Greedy A vs Greedy B.
TEST(IntegrationTest, MiniTable1Pipeline) {
  TextTable table({"p", "OPT", "GreedyA", "GreedyB", "AF_A", "AF_B"});
  for (int p = 3; p <= 5; ++p) {
    Rng rng(1000 + p);
    Dataset data = MakeUniformSynthetic(16, rng);
    const ModularFunction weights(data.weights);
    const DiversificationProblem problem(&data.metric, &weights, 0.2);
    const AlgorithmResult opt = BruteForceCardinality(problem, {.p = p});
    const AlgorithmResult a = GreedyEdge(problem, weights, {.p = p});
    const AlgorithmResult b = GreedyVertex(problem, {.p = p});
    EXPECT_GE(a.objective * 2.0 + 1e-9, opt.objective);
    EXPECT_GE(b.objective * 2.0 + 1e-9, opt.objective);
    table.NewRow()
        .AddInt(p)
        .AddDouble(opt.objective)
        .AddDouble(a.objective)
        .AddDouble(b.objective)
        .AddDouble(opt.objective / a.objective)
        .AddDouble(opt.objective / b.objective);
  }
  std::ostringstream os;
  table.Print(os);
  EXPECT_EQ(table.num_rows(), 3u);
  EXPECT_FALSE(os.str().empty());
}

// A miniature Table 5 pipeline on simulated LETOR data.
TEST(IntegrationTest, MiniLetorPipeline) {
  Rng rng(2024);
  LetorConfig config;
  config.num_documents = 60;
  const LetorQuery query = MakeLetorQuery(config, rng);
  const LetorQuery top = TopKDocuments(query, 30);
  const ModularFunction weights(top.data.weights);
  const DiversificationProblem problem(&top.data.metric, &weights, 0.2);
  for (int p : {3, 5, 8}) {
    const AlgorithmResult a = GreedyEdge(problem, weights, {.p = p});
    const AlgorithmResult b = GreedyVertex(problem, {.p = p});
    const UniformMatroid matroid(30, p);
    LocalSearchOptions ls_options;
    ls_options.initial = b.elements;
    const AlgorithmResult ls = LocalSearch(problem, matroid, ls_options);
    EXPECT_EQ(static_cast<int>(b.elements.size()), p);
    EXPECT_GE(ls.objective + 1e-9, b.objective);
    // Shape check (paper §7.2): Greedy B at least matches Greedy A here.
    EXPECT_GE(b.objective * 1.05, a.objective);
  }
}

// Submodular end-to-end: mixture of modular relevance and topic coverage
// under cardinality and matroid constraints.
TEST(IntegrationTest, SubmodularMixturePipeline) {
  Rng rng(31);
  Dataset data = MakeUniformSynthetic(14, rng);
  const ModularFunction relevance(data.weights);
  std::vector<std::vector<int>> covers(14);
  for (auto& cv : covers) {
    cv = rng.SampleWithoutReplacement(8, rng.UniformInt(1, 4));
  }
  const CoverageFunction coverage(covers, std::vector<double>(8, 0.5));
  const MixtureFunction quality({&relevance, &coverage}, {1.0, 1.0});
  const DiversificationProblem problem(&data.metric, &quality, 0.2);

  const AlgorithmResult greedy = GreedyVertex(problem, {.p = 5});
  const AlgorithmResult opt = BruteForceCardinality(problem, {.p = 5});
  EXPECT_GE(greedy.objective * 2.0 + 1e-9, opt.objective);

  const UniformMatroid matroid(14, 5);
  const AlgorithmResult ls = LocalSearch(problem, matroid, {});
  EXPECT_GE(ls.objective * 2.0 + 1e-9, opt.objective);
}

// Greedy B runs at vertex granularity and must therefore scan far fewer
// candidate structures than Greedy A (edges): the paper's timing story.
TEST(IntegrationTest, GreedyBFasterThanGreedyA) {
  Rng rng(32);
  Dataset data = MakeUniformSynthetic(300, rng);
  const ModularFunction weights(data.weights);
  const DiversificationProblem problem(&data.metric, &weights, 0.2);
  const AlgorithmResult a = GreedyEdge(problem, weights, {.p = 20});
  const AlgorithmResult b = GreedyVertex(problem, {.p = 20});
  EXPECT_EQ(a.elements.size(), b.elements.size());
  // Timing is noisy in CI; require only that B is not slower than A. On any
  // realistic machine B is 10-100x faster at this size.
  EXPECT_LE(b.elapsed_seconds, a.elapsed_seconds);
}

// The relative quality ordering the paper reports, averaged over seeds:
// LS >= Greedy B >= Greedy A (on average), all within 2x of OPT.
TEST(IntegrationTest, PaperQualityOrderingOnAverage) {
  double sum_a = 0.0;
  double sum_b = 0.0;
  double sum_ls = 0.0;
  const int trials = 10;
  for (int t = 0; t < trials; ++t) {
    Rng rng(500 + t);
    Dataset data = MakeUniformSynthetic(40, rng);
    const ModularFunction weights(data.weights);
    const DiversificationProblem problem(&data.metric, &weights, 0.2);
    const int p = 8;
    sum_a += GreedyEdge(problem, weights, {.p = p}).objective;
    const AlgorithmResult b = GreedyVertex(problem, {.p = p});
    sum_b += b.objective;
    const UniformMatroid matroid(40, p);
    LocalSearchOptions options;
    options.initial = b.elements;
    sum_ls += LocalSearch(problem, matroid, options).objective;
  }
  EXPECT_GE(sum_b, sum_a * 0.999);
  EXPECT_GE(sum_ls, sum_b - 1e-9);
}

// End-to-end dynamic experiment at miniature scale (the Fig. 1 pipeline).
TEST(IntegrationTest, DynamicPipelineAllEnvironments) {
  for (PerturbationEnvironment env :
       {PerturbationEnvironment::kVertex, PerturbationEnvironment::kEdge,
        PerturbationEnvironment::kMixed}) {
    DynamicSimulationConfig config;
    config.n = 10;
    config.p = 3;
    config.steps = 4;
    config.runs = 2;
    config.environment = env;
    config.seed = 99;
    const DynamicSimulationResult result = RunDynamicSimulation(config);
    EXPECT_GE(result.worst_ratio, 1.0) << ToString(env);
    EXPECT_LE(result.worst_ratio, 3.0) << ToString(env);
  }
}

// Every generator used by the benches produces a true metric.
TEST(IntegrationTest, AllBenchDataSourcesAreMetric) {
  Rng rng(77);
  const Dataset synthetic = MakeUniformSynthetic(20, rng);
  EXPECT_TRUE(ValidateMetric(synthetic.metric).IsMetric());
  LetorConfig letor_config;
  letor_config.num_documents = 20;
  const LetorQuery query = MakeLetorQuery(letor_config, rng);
  // Cosine (1 - cos) on non-negative vectors: validate the relaxed alpha is
  // not pathological even where strict triangle inequality may fail.
  const MetricReport report = ValidateMetric(query.data.metric);
  EXPECT_TRUE(report.symmetric);
  EXPECT_TRUE(report.non_negative);
  EXPECT_GT(report.alpha, 0.3);
}

}  // namespace
}  // namespace diverse
