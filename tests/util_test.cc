#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <sstream>
#include <vector>

#include "util/flags.h"
#include "util/random.h"
#include "util/stats.h"
#include "util/table.h"
#include "util/timer.h"

namespace diverse {
namespace {

TEST(RngTest, UniformStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.Uniform(1.0, 2.0);
    EXPECT_GE(x, 1.0);
    EXPECT_LT(x, 2.0);
  }
}

TEST(RngTest, UniformIntCoversEndpoints) {
  Rng rng(7);
  std::set<int> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.UniformInt(3, 5));
  EXPECT_EQ(seen, (std::set<int>{3, 4, 5}));
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.Uniform(), b.Uniform());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Uniform() == b.Uniform()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, GaussianRoughMoments) {
  Rng rng(11);
  OnlineStats stats;
  for (int i = 0; i < 20000; ++i) stats.Add(rng.Gaussian(5.0, 2.0));
  EXPECT_NEAR(stats.mean(), 5.0, 0.1);
  EXPECT_NEAR(stats.stddev(), 2.0, 0.1);
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    const auto sample = rng.SampleWithoutReplacement(10, 6);
    ASSERT_EQ(sample.size(), 6u);
    std::set<int> unique(sample.begin(), sample.end());
    EXPECT_EQ(unique.size(), 6u);
    for (int x : sample) {
      EXPECT_GE(x, 0);
      EXPECT_LT(x, 10);
    }
  }
}

TEST(RngTest, SampleWithoutReplacementFullSet) {
  Rng rng(5);
  const auto sample = rng.SampleWithoutReplacement(5, 5);
  std::set<int> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 5u);
}

TEST(RngTest, SampleWithoutReplacementEmpty) {
  Rng rng(5);
  EXPECT_TRUE(rng.SampleWithoutReplacement(5, 0).empty());
}

TEST(RngTest, ShufflePreservesMultiset) {
  Rng rng(9);
  std::vector<int> v = {1, 2, 3, 4, 5, 6};
  std::vector<int> shuffled = v;
  rng.Shuffle(&shuffled);
  std::multiset<int> a(v.begin(), v.end());
  std::multiset<int> b(shuffled.begin(), shuffled.end());
  EXPECT_EQ(a, b);
}

TEST(OnlineStatsTest, EmptyIsZero) {
  OnlineStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(OnlineStatsTest, KnownValues) {
  OnlineStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(StatsTest, VectorHelpers) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(Mean(xs), 2.5);
  EXPECT_DOUBLE_EQ(Min(xs), 1.0);
  EXPECT_DOUBLE_EQ(Max(xs), 4.0);
  EXPECT_DOUBLE_EQ(Median(xs), 2.5);
  EXPECT_DOUBLE_EQ(Percentile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(xs, 1.0), 4.0);
  EXPECT_NEAR(StdDev(xs), std::sqrt(5.0 / 3.0), 1e-12);
}

TEST(StatsTest, MeanOfEmptyIsZero) {
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
}

TEST(TableTest, AlignsAndPrints) {
  TextTable table({"p", "OPT", "AF"});
  table.NewRow().AddInt(3).AddDouble(4.87).AddDouble(1.018);
  table.NewRow().AddInt(4).AddDouble(7.822).AddDouble(1.027);
  std::ostringstream os;
  table.Print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("OPT"), std::string::npos);
  EXPECT_NE(out.find("4.870"), std::string::npos);
  EXPECT_NE(out.find("1.027"), std::string::npos);
  EXPECT_EQ(table.num_rows(), 2u);
}

TEST(TableTest, CsvOutput) {
  TextTable table({"a", "b"});
  table.NewRow().AddInt(1).AddCell("x");
  std::ostringstream os;
  table.PrintCsv(os);
  EXPECT_EQ(os.str(), "a,b\n1,x\n");
}

TEST(TableTest, FormatDouble) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(1.0, 0), "1");
}

TEST(FlagsTest, ParsesAllTypes) {
  int i = 1;
  double d = 0.5;
  bool b = false;
  std::string s = "x";
  FlagSet flags("test");
  flags.AddInt("count", &i, "");
  flags.AddDouble("lam", &d, "");
  flags.AddBool("verbose", &b, "");
  flags.AddString("name", &s, "");
  const char* argv[] = {"prog", "--count=7", "--lam", "0.25", "--verbose",
                        "--name=foo"};
  ASSERT_TRUE(flags.Parse(6, const_cast<char**>(argv)));
  EXPECT_EQ(i, 7);
  EXPECT_DOUBLE_EQ(d, 0.25);
  EXPECT_TRUE(b);
  EXPECT_EQ(s, "foo");
}

TEST(FlagsTest, RejectsUnknownFlag) {
  FlagSet flags;
  const char* argv[] = {"prog", "--nope=1"};
  EXPECT_FALSE(flags.Parse(2, const_cast<char**>(argv)));
}

TEST(FlagsTest, RejectsBadInt) {
  int i = 0;
  FlagSet flags;
  flags.AddInt("n", &i, "");
  const char* argv[] = {"prog", "--n=abc"};
  EXPECT_FALSE(flags.Parse(2, const_cast<char**>(argv)));
}

TEST(FlagsTest, DefaultsSurviveWhenUnset) {
  int i = 42;
  FlagSet flags;
  flags.AddInt("n", &i, "");
  const char* argv[] = {"prog"};
  ASSERT_TRUE(flags.Parse(1, const_cast<char**>(argv)));
  EXPECT_EQ(i, 42);
}

TEST(TimerTest, MeasuresNonNegativeTime) {
  WallTimer timer;
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink = sink + i;
  EXPECT_GE(timer.Seconds(), 0.0);
  EXPECT_GE(timer.Milliseconds(), timer.Seconds());  // ms >= s for t >= 0
}

}  // namespace
}  // namespace diverse
