#include <gtest/gtest.h>

#include <vector>

#include "submodular/concave_over_modular.h"
#include "submodular/coverage_function.h"
#include "submodular/facility_location.h"
#include "submodular/function_validation.h"
#include "submodular/mixture_function.h"
#include "submodular/modular_function.h"
#include "submodular/set_function.h"
#include "util/random.h"

namespace diverse {
namespace {

std::vector<double> RandomWeights(int n, Rng& rng) {
  std::vector<double> w(n);
  for (double& x : w) x = rng.Uniform(0.0, 1.0);
  return w;
}

CoverageFunction RandomCoverage(int n, int topics, Rng& rng) {
  std::vector<std::vector<int>> covers(n);
  for (auto& c : covers) {
    const int k = rng.UniformInt(0, topics);
    c = rng.SampleWithoutReplacement(topics, k);
  }
  std::vector<double> weights(topics);
  for (double& w : weights) w = rng.Uniform(0.1, 1.0);
  return CoverageFunction(std::move(covers), std::move(weights));
}

FacilityLocationFunction RandomFacilityLocation(int n, Rng& rng) {
  std::vector<std::vector<double>> sim(n, std::vector<double>(n));
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      sim[i][j] = rng.Uniform(0.0, 1.0);
    }
  }
  return FacilityLocationFunction(std::move(sim));
}

TEST(ZeroFunctionTest, AlwaysZero) {
  const ZeroFunction f(5);
  EXPECT_DOUBLE_EQ(f.Value(std::vector<int>{}), 0.0);
  EXPECT_DOUBLE_EQ(f.Value(std::vector<int>{0, 3, 4}), 0.0);
  EXPECT_DOUBLE_EQ(f.MarginalGain(std::vector<int>{1}, 2), 0.0);
  EXPECT_TRUE(ValidateFunctionExhaustive(f).IsMonotoneSubmodular());
}

TEST(ModularFunctionTest, ValueIsWeightSum) {
  const ModularFunction f({1.0, 2.0, 3.0});
  EXPECT_DOUBLE_EQ(f.Value(std::vector<int>{0, 2}), 4.0);
  EXPECT_DOUBLE_EQ(f.MarginalGain(std::vector<int>{0}, 1), 2.0);
}

TEST(ModularFunctionTest, SetWeightUpdates) {
  ModularFunction f({1.0, 2.0});
  f.SetWeight(0, 5.0);
  EXPECT_DOUBLE_EQ(f.weight(0), 5.0);
  EXPECT_DOUBLE_EQ(f.Value(std::vector<int>{0, 1}), 7.0);
}

TEST(ModularFunctionTest, RejectsNegativeWeights) {
  EXPECT_DEATH(ModularFunction({-1.0}), "non-negative");
}

TEST(ModularFunctionTest, IsMonotoneSubmodular) {
  Rng rng(1);
  const ModularFunction f(RandomWeights(8, rng));
  EXPECT_TRUE(ValidateFunctionExhaustive(f).IsMonotoneSubmodular());
}

TEST(CoverageFunctionTest, CountsCoveredTopicsOnce) {
  // Elements 0 and 1 overlap on topic 0.
  const CoverageFunction f({{0, 1}, {0, 2}, {3}}, {1.0, 2.0, 4.0, 8.0});
  EXPECT_DOUBLE_EQ(f.Value(std::vector<int>{0}), 3.0);
  EXPECT_DOUBLE_EQ(f.Value(std::vector<int>{0, 1}), 7.0);   // topic 0 once
  EXPECT_DOUBLE_EQ(f.Value(std::vector<int>{0, 1, 2}), 15.0);
  EXPECT_DOUBLE_EQ(f.MarginalGain(std::vector<int>{0}, 1), 4.0);
}

TEST(CoverageFunctionTest, EvaluatorAddRemoveRoundTrip) {
  Rng rng(2);
  const CoverageFunction f = RandomCoverage(10, 12, rng);
  auto eval = f.MakeEvaluator();
  eval->Add(3);
  eval->Add(7);
  eval->Add(1);
  const double v3 = eval->value();
  eval->Add(5);
  eval->Remove(5);
  EXPECT_NEAR(eval->value(), v3, 1e-12);
  eval->Remove(3);
  eval->Remove(7);
  eval->Remove(1);
  EXPECT_NEAR(eval->value(), 0.0, 1e-12);
}

TEST(CoverageFunctionTest, IsMonotoneSubmodular) {
  Rng rng(3);
  const CoverageFunction f = RandomCoverage(8, 10, rng);
  EXPECT_TRUE(ValidateFunctionExhaustive(f).IsMonotoneSubmodular());
}

TEST(FacilityLocationTest, MaxSemantics) {
  // One client, two facilities with similarities 0.3 and 0.8.
  const FacilityLocationFunction f({{0.3, 0.8}});
  EXPECT_DOUBLE_EQ(f.Value(std::vector<int>{0}), 0.3);
  EXPECT_DOUBLE_EQ(f.Value(std::vector<int>{1}), 0.8);
  EXPECT_DOUBLE_EQ(f.Value(std::vector<int>{0, 1}), 0.8);
  EXPECT_DOUBLE_EQ(f.MarginalGain(std::vector<int>{1}, 0), 0.0);
}

TEST(FacilityLocationTest, RemoveRestoresSecondBest) {
  const FacilityLocationFunction f({{0.3, 0.8, 0.5}});
  auto eval = f.MakeEvaluator();
  eval->Add(0);
  eval->Add(1);
  eval->Add(2);
  EXPECT_DOUBLE_EQ(eval->value(), 0.8);
  eval->Remove(1);  // best facility leaves; 0.5 takes over
  EXPECT_DOUBLE_EQ(eval->value(), 0.5);
  eval->Remove(2);
  EXPECT_DOUBLE_EQ(eval->value(), 0.3);
}

TEST(FacilityLocationTest, IsMonotoneSubmodular) {
  Rng rng(4);
  const FacilityLocationFunction f = RandomFacilityLocation(7, rng);
  EXPECT_TRUE(ValidateFunctionExhaustive(f).IsMonotoneSubmodular());
}

TEST(ConcaveOverModularTest, SqrtValues) {
  const ConcaveOverModularFunction f({4.0, 5.0, 16.0}, ConcaveShape::kSqrt);
  EXPECT_DOUBLE_EQ(f.Value(std::vector<int>{0}), 2.0);
  EXPECT_DOUBLE_EQ(f.Value(std::vector<int>{0, 1, 2}), 5.0);
}

TEST(ConcaveOverModularTest, CapSaturates) {
  const ConcaveOverModularFunction f({3.0, 3.0}, ConcaveShape::kCap, 4.0);
  EXPECT_DOUBLE_EQ(f.Value(std::vector<int>{0}), 3.0);
  EXPECT_DOUBLE_EQ(f.Value(std::vector<int>{0, 1}), 4.0);
  EXPECT_DOUBLE_EQ(f.MarginalGain(std::vector<int>{0}, 1), 1.0);
}

class ConcaveShapeSweep : public ::testing::TestWithParam<ConcaveShape> {};

TEST_P(ConcaveShapeSweep, IsMonotoneSubmodular) {
  Rng rng(5);
  const ConcaveOverModularFunction f(RandomWeights(8, rng), GetParam(), 1.5);
  EXPECT_TRUE(ValidateFunctionExhaustive(f).IsMonotoneSubmodular());
}

INSTANTIATE_TEST_SUITE_P(Shapes, ConcaveShapeSweep,
                         ::testing::Values(ConcaveShape::kSqrt,
                                           ConcaveShape::kLog1p,
                                           ConcaveShape::kCap));

TEST(MixtureFunctionTest, WeightedSumOfComponents) {
  const ModularFunction a({1.0, 2.0, 3.0});
  const CoverageFunction b({{0}, {0}, {1}}, {10.0, 20.0});
  const MixtureFunction mix({&a, &b}, {2.0, 0.5});
  // f({0,1}) = 2*(1+2) + 0.5*10 = 11
  EXPECT_DOUBLE_EQ(mix.Value(std::vector<int>{0, 1}), 11.0);
}

TEST(MixtureFunctionTest, IsMonotoneSubmodular) {
  Rng rng(6);
  const ModularFunction a(RandomWeights(8, rng));
  const CoverageFunction b = RandomCoverage(8, 6, rng);
  const FacilityLocationFunction c = RandomFacilityLocation(8, rng);
  const MixtureFunction mix({&a, &b, &c}, {0.3, 1.0, 2.0});
  EXPECT_TRUE(ValidateFunctionExhaustive(mix).IsMonotoneSubmodular());
}

TEST(MixtureFunctionTest, RejectsMismatchedGroundSets) {
  const ModularFunction a({1.0, 2.0});
  const ModularFunction b({1.0, 2.0, 3.0});
  EXPECT_DEATH(MixtureFunction({&a, &b}, {1.0, 1.0}), "ground set");
}

TEST(FunctionValidationTest, DetectsNonSubmodular) {
  // f(S) = |S|^2 is supermodular (strictly, for |S| >= 1): marginal gains
  // increase. Build it as a custom function via a coverage-like wrapper is
  // not possible, so define inline.
  class SquareCardinality : public SetFunction {
   public:
    int ground_size() const override { return 6; }
    std::unique_ptr<SetFunctionEvaluator> MakeEvaluator() const override {
      class Eval : public SetFunctionEvaluator {
       public:
        double value() const override {
          return static_cast<double>(k_) * k_;
        }
        double Gain(int) const override {
          return static_cast<double>(k_ + 1) * (k_ + 1) -
                 static_cast<double>(k_) * k_;
        }
        void Add(int) override { ++k_; }
        void Remove(int) override { --k_; }
        void Reset() override { k_ = 0; }

       private:
        int k_ = 0;
      };
      return std::make_unique<Eval>();
    }
  };
  const SquareCardinality f;
  const FunctionReport report = ValidateFunctionExhaustive(f);
  EXPECT_TRUE(report.monotone);
  EXPECT_FALSE(report.submodular);
}

TEST(FunctionValidationTest, DetectsNonMonotone) {
  class Decreasing : public SetFunction {
   public:
    int ground_size() const override { return 5; }
    std::unique_ptr<SetFunctionEvaluator> MakeEvaluator() const override {
      class Eval : public SetFunctionEvaluator {
       public:
        double value() const override { return -static_cast<double>(k_); }
        double Gain(int) const override { return -1.0; }
        void Add(int) override { ++k_; }
        void Remove(int) override { --k_; }
        void Reset() override { k_ = 0; }

       private:
        int k_ = 0;
      };
      return std::make_unique<Eval>();
    }
  };
  const Decreasing f;
  EXPECT_FALSE(ValidateFunctionExhaustive(f).monotone);
}

TEST(FunctionValidationTest, SampledValidatorPassesGoodFunctions) {
  Rng data_rng(7);
  const CoverageFunction f = RandomCoverage(40, 30, data_rng);
  Rng rng(8);
  EXPECT_TRUE(ValidateFunctionSampled(f, rng, 500).IsMonotoneSubmodular());
}

class RandomFunctionSweep : public ::testing::TestWithParam<int> {};

TEST_P(RandomFunctionSweep, AllFamiliesValidateExhaustively) {
  Rng rng(GetParam());
  const ModularFunction modular(RandomWeights(7, rng));
  const CoverageFunction coverage = RandomCoverage(7, 9, rng);
  const FacilityLocationFunction facility = RandomFacilityLocation(7, rng);
  EXPECT_TRUE(ValidateFunctionExhaustive(modular).IsMonotoneSubmodular());
  EXPECT_TRUE(ValidateFunctionExhaustive(coverage).IsMonotoneSubmodular());
  EXPECT_TRUE(ValidateFunctionExhaustive(facility).IsMonotoneSubmodular());
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomFunctionSweep, ::testing::Range(10, 20));

}  // namespace
}  // namespace diverse
