// util/stats.h edge cases: the empty OnlineStats accumulator must answer
// min()/max() with NaN (a sentinel-free "no samples yet", not a 0.0 that
// masquerades as data), and Percentile's boundary behavior — single
// element, q = 0, q = 1, empty input — must match a sorted
// linear-interpolation walk exactly.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/stats.h"

namespace diverse {
namespace {

TEST(OnlineStatsTest, EmptyMinMaxAreNaN) {
  OnlineStats stats;
  EXPECT_EQ(stats.count(), 0u);
  EXPECT_TRUE(std::isnan(stats.min()));
  EXPECT_TRUE(std::isnan(stats.max()));
  EXPECT_EQ(stats.mean(), 0.0);
  EXPECT_EQ(stats.variance(), 0.0);
  EXPECT_EQ(stats.stddev(), 0.0);
}

TEST(OnlineStatsTest, SingleSampleIsItsOwnExtremes) {
  OnlineStats stats;
  stats.Add(-3.5);
  EXPECT_EQ(stats.count(), 1u);
  EXPECT_EQ(stats.min(), -3.5);
  EXPECT_EQ(stats.max(), -3.5);
  EXPECT_EQ(stats.mean(), -3.5);
  EXPECT_EQ(stats.variance(), 0.0);
}

TEST(OnlineStatsTest, TracksExtremesAndMoments) {
  OnlineStats stats;
  for (double x : {2.0, -1.0, 4.0, 0.5}) stats.Add(x);
  EXPECT_EQ(stats.count(), 4u);
  EXPECT_EQ(stats.min(), -1.0);
  EXPECT_EQ(stats.max(), 4.0);
  EXPECT_DOUBLE_EQ(stats.mean(), 1.375);
  // Sample variance with the n-1 denominator.
  EXPECT_NEAR(stats.variance(), 4.5625, 1e-12);
}

TEST(OnlineStatsTest, ZeroSampleIsNotConfusedWithEmpty) {
  // A single 0.0 sample must be distinguishable from "no samples": real
  // extremes of 0.0, not NaN.
  OnlineStats stats;
  stats.Add(0.0);
  EXPECT_EQ(stats.min(), 0.0);
  EXPECT_EQ(stats.max(), 0.0);
  EXPECT_FALSE(std::isnan(stats.min()));
}

TEST(PercentileTest, SingleElementAnswersEveryQuantile) {
  const std::vector<double> xs = {7.25};
  EXPECT_EQ(Percentile(xs, 0.0), 7.25);
  EXPECT_EQ(Percentile(xs, 0.5), 7.25);
  EXPECT_EQ(Percentile(xs, 1.0), 7.25);
}

TEST(PercentileTest, EndpointsAreMinAndMax) {
  const std::vector<double> xs = {5.0, 1.0, 3.0, 2.0};
  EXPECT_EQ(Percentile(xs, 0.0), 1.0);
  EXPECT_EQ(Percentile(xs, 1.0), 5.0);
}

TEST(PercentileTest, InteriorQuantilesInterpolate) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  // pos = q * (n - 1): 0.5 * 3 = 1.5 → halfway between 2 and 3.
  EXPECT_DOUBLE_EQ(Percentile(xs, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(Median(xs), 2.5);
  // 0.25 * 3 = 0.75 → 1 + 0.75 * (2 - 1).
  EXPECT_DOUBLE_EQ(Percentile(xs, 0.25), 1.75);
}

TEST(PercentileTest, EmptyInputAborts) {
  EXPECT_DEATH(Percentile({}, 0.5), "");
}

TEST(PercentileTest, OutOfRangeQuantileAborts) {
  EXPECT_DEATH(Percentile({1.0}, 1.5), "");
  EXPECT_DEATH(Percentile({1.0}, -0.1), "");
}

}  // namespace
}  // namespace diverse
