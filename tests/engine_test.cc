// Tests for the concurrent serving engine (src/engine): snapshot-isolated
// queries under concurrent updates, per-query problem views, constraint
// handling over retired ids, and determinism of the sharded plan across
// worker-pool sizes.
#include <gtest/gtest.h>

#include <algorithm>
#include <future>
#include <map>
#include <set>
#include <thread>
#include <vector>

#include "algorithms/distributed.h"
#include "algorithms/greedy_vertex.h"
#include "core/diversification_problem.h"
#include "data/synthetic.h"
#include "engine/engine.h"
#include "matroid/partition_matroid.h"
#include "matroid/uniform_matroid.h"
#include "submodular/modular_function.h"
#include "util/random.h"

namespace diverse {
namespace engine {
namespace {

DiversificationEngine MakeEngine(int n, std::uint64_t seed, double lambda,
                                 DiversificationEngine::Options options) {
  Rng rng(seed);
  Dataset data = MakeUniformSynthetic(n, rng);
  return DiversificationEngine(data.weights, std::move(data.metric), lambda,
                               options);
}

// Reference: the same algorithm the single-node greedy plan runs, executed
// directly on a snapshot's problem view.
std::vector<int> ReferenceGreedy(const CorpusSnapshot& snapshot, int p) {
  return GreedyVertexOnCandidates(snapshot.problem(), snapshot.candidates(),
                                  p)
      .elements;
}

TEST(EngineTest, SingleQueryMatchesGreedyReference) {
  DiversificationEngine engine = MakeEngine(30, 1, 0.3, {.num_workers = 2});
  Query query;
  query.p = 6;
  const QueryResult result = engine.Submit(query).get();
  const SnapshotPtr snapshot = engine.corpus().snapshot();
  EXPECT_EQ(result.corpus_version, 0u);
  EXPECT_EQ(result.elements, ReferenceGreedy(*snapshot, 6));
  EXPECT_NEAR(result.objective,
              snapshot->problem().Objective(result.elements), 1e-9);
  EXPECT_GE(result.latency_seconds, 0.0);
}

TEST(EngineTest, CorpusFromBaseMetricMaterializesOnce) {
  Rng rng(21);
  Dataset data = MakeUniformSynthetic(12, rng);
  std::vector<double> weights(12, 0.5);
  const Corpus corpus =
      Corpus::FromBaseMetric(data.metric, weights, /*lambda=*/0.3);
  const SnapshotPtr snapshot = corpus.snapshot();
  EXPECT_EQ(snapshot->universe_size(), 12);
  for (int u = 0; u < 12; ++u) {
    for (int v = 0; v < 12; ++v) {
      EXPECT_DOUBLE_EQ(snapshot->metric().Distance(u, v),
                       data.metric.Distance(u, v));
    }
  }
}

TEST(EngineTest, SyncAndPooledAnswersAgree) {
  DiversificationEngine engine = MakeEngine(25, 2, 0.25, {.num_workers = 3});
  Query query;
  query.p = 5;
  const QueryResult sync = engine.RunSync(query);
  const QueryResult pooled = engine.Submit(query).get();
  EXPECT_EQ(sync.elements, pooled.elements);
  EXPECT_NEAR(sync.objective, pooled.objective, 1e-12);
}

TEST(EngineTest, PerQueryRelevanceOverridesCorpusWeights) {
  Rng rng(3);
  Dataset data = MakeUniformSynthetic(20, rng);
  DiversificationEngine engine(data.weights, data.metric, 0.1,
                               {.num_workers = 2});
  // A relevance function concentrated on two ids must pull them in.
  std::vector<double> relevance(20, 0.0);
  relevance[7] = 50.0;
  relevance[13] = 50.0;
  Query query;
  query.p = 4;
  query.relevance = relevance;
  const QueryResult result = engine.Submit(query).get();
  const std::set<int> chosen(result.elements.begin(), result.elements.end());
  EXPECT_TRUE(chosen.count(7));
  EXPECT_TRUE(chosen.count(13));

  // And the result is exactly the greedy answer under that relevance.
  const ModularFunction fn(relevance);
  const DiversificationProblem reference_problem(&data.metric, &fn, 0.1);
  std::vector<int> all(20);
  for (int i = 0; i < 20; ++i) all[i] = i;
  EXPECT_EQ(result.elements,
            GreedyVertexOnCandidates(reference_problem, all, 4).elements);
}

TEST(EngineTest, LambdaOverrideChangesTradeoff) {
  Rng rng(4);
  Dataset data = MakeUniformSynthetic(22, rng);
  DiversificationEngine engine(data.weights, data.metric, 0.2,
                               {.num_workers = 1});
  Query query;
  query.p = 5;
  query.lambda = 5.0;  // diversity-dominated
  const QueryResult result = engine.Submit(query).get();
  const ModularFunction weights(data.weights);
  const DiversificationProblem reference(&data.metric, &weights, 5.0);
  std::vector<int> all(22);
  for (int i = 0; i < 22; ++i) all[i] = i;
  EXPECT_EQ(result.elements,
            GreedyVertexOnCandidates(reference, all, 5).elements);
}

TEST(EngineTest, LocalSearchQueryHonorsMatroid) {
  DiversificationEngine engine = MakeEngine(18, 5, 0.3, {.num_workers = 2});
  // Three blocks of six ids, at most two per block.
  std::vector<int> block_of(18);
  for (int e = 0; e < 18; ++e) block_of[e] = e / 6;
  const PartitionMatroid matroid(block_of, {2, 2, 2});
  Query query;
  query.p = 6;
  query.algorithm = QueryAlgorithm::kLocalSearch;
  query.matroid = &matroid;
  const QueryResult result = engine.Submit(query).get();
  EXPECT_TRUE(matroid.IsIndependent(result.elements));
  EXPECT_EQ(result.elements.size(), 6u);
  const SnapshotPtr snapshot = engine.corpus().snapshot();
  EXPECT_NEAR(result.objective,
              snapshot->problem().Objective(result.elements), 1e-9);
}

TEST(EngineTest, StaleMatroidSurvivesRacingInsert) {
  // A client matroid built for the pre-insert id space must keep working
  // (and never admit the new id) after an insert epoch publishes.
  DiversificationEngine engine = MakeEngine(10, 22, 0.3, {.num_workers = 2});
  const UniformMatroid matroid(10, 3);
  std::vector<double> distances(10, 1.5);
  engine.ApplyUpdate(CorpusUpdate::Insert(5.0, std::move(distances)));
  Query query;
  query.p = 3;
  query.algorithm = QueryAlgorithm::kLocalSearch;
  query.matroid = &matroid;
  const QueryResult result = engine.Submit(query).get();
  EXPECT_EQ(result.corpus_version, 1u);
  EXPECT_EQ(result.elements.size(), 3u);
  for (int e : result.elements) EXPECT_LT(e, 10);
}

TEST(EngineTest, KnapsackQueryRespectsBudget) {
  DiversificationEngine engine = MakeEngine(16, 6, 0.3, {.num_workers = 2});
  Query query;
  query.p = 16;  // knapsack ignores p; budget binds
  query.algorithm = QueryAlgorithm::kKnapsack;
  query.costs.assign(16, 1.0);
  query.budget = 3.0;
  const QueryResult result = engine.Submit(query).get();
  EXPECT_LE(result.elements.size(), 3u);
  EXPECT_FALSE(result.elements.empty());
}

TEST(EngineTest, InsertedElementBecomesSelectable) {
  // Low-weight corpus; the inserted element dominates on quality.
  DenseMetric metric(4);
  for (int u = 0; u < 4; ++u) {
    for (int v = u + 1; v < 4; ++v) metric.SetDistance(u, v, 1.0);
  }
  DiversificationEngine engine(std::vector<double>(4, 0.1), metric, 0.01,
                               {.num_workers = 1});
  engine.ApplyUpdate(CorpusUpdate::Insert(10.0, {1.0, 1.0, 1.0, 1.0}));
  Query query;
  query.p = 2;
  const QueryResult result = engine.Submit(query).get();
  EXPECT_EQ(result.corpus_version, 1u);
  EXPECT_NE(std::find(result.elements.begin(), result.elements.end(), 4),
            result.elements.end());
}

TEST(EngineTest, ErasedElementsNeverReturned) {
  DiversificationEngine engine = MakeEngine(20, 7, 0.3, {.num_workers = 2});
  const std::vector<CorpusUpdate> updates = {
      CorpusUpdate::Erase(3), CorpusUpdate::Erase(11),
      CorpusUpdate::Erase(17)};
  engine.ApplyUpdates(updates);
  for (QueryAlgorithm algorithm :
       {QueryAlgorithm::kGreedy, QueryAlgorithm::kLocalSearch,
        QueryAlgorithm::kKnapsack}) {
    Query query;
    query.p = 8;
    query.algorithm = algorithm;
    if (algorithm == QueryAlgorithm::kKnapsack) {
      query.costs.assign(20, 1.0);
      query.budget = 8.0;
    }
    const QueryResult result = engine.Submit(query).get();
    for (int e : result.elements) {
      EXPECT_NE(e, 3);
      EXPECT_NE(e, 11);
      EXPECT_NE(e, 17);
    }
    EXPECT_FALSE(result.elements.empty());
  }
  // Sharded plan too.
  Query sharded;
  sharded.p = 8;
  sharded.plan = PlanKind::kSharded;
  sharded.num_shards = 3;
  const QueryResult result = engine.Submit(sharded).get();
  for (int e : result.elements) {
    EXPECT_NE(e, 3);
    EXPECT_NE(e, 11);
    EXPECT_NE(e, 17);
  }
}

TEST(EngineTest, ShardedPlanIndependentOfWorkerPoolSize) {
  std::vector<std::vector<int>> answers;
  for (int workers : {1, 2, 4}) {
    DiversificationEngine engine =
        MakeEngine(60, 8, 0.3, {.num_workers = workers, .max_batch = 2});
    Query query;
    query.p = 8;
    query.plan = PlanKind::kSharded;
    query.num_shards = 4;
    query.shard_salt = 42;
    // Several in flight at once so batching boundaries differ by pool.
    std::vector<std::future<QueryResult>> futures;
    for (int i = 0; i < 6; ++i) futures.push_back(engine.Submit(query));
    std::vector<std::vector<int>> results;
    for (auto& future : futures) results.push_back(future.get().elements);
    for (const std::vector<int>& elements : results) {
      EXPECT_EQ(elements, results[0]);
    }
    answers.push_back(results[0]);
  }
  EXPECT_EQ(answers[0], answers[1]);
  EXPECT_EQ(answers[0], answers[2]);
}

TEST(EngineTest, ShardedPlanMatchesDirectShardedGreedy) {
  Rng rng(9);
  Dataset data = MakeUniformSynthetic(50, rng);
  DiversificationEngine engine(data.weights, data.metric, 0.3,
                               {.num_workers = 2});
  Query query;
  query.p = 7;
  query.plan = PlanKind::kSharded;
  query.num_shards = 5;
  query.shard_salt = 7;
  const QueryResult result = engine.Submit(query).get();
  const ModularFunction weights(data.weights);
  const DiversificationProblem problem(&data.metric, &weights, 0.3);
  std::vector<int> all(50);
  for (int i = 0; i < 50; ++i) all[i] = i;
  const AlgorithmResult direct = ShardedGreedy(problem, all, 7, 5, 0, 7);
  EXPECT_EQ(result.elements, direct.elements);
  EXPECT_NEAR(result.objective, direct.objective, 1e-12);
}

TEST(EngineTest, BatchingAmortizesSnapshots) {
  DiversificationEngine engine =
      MakeEngine(24, 10, 0.3, {.num_workers = 1, .max_batch = 8});
  Query query;
  query.p = 4;
  std::vector<Query> queries(20, query);
  std::vector<std::future<QueryResult>> futures =
      engine.SubmitBatch(std::move(queries));
  for (auto& future : futures) future.get();
  const DiversificationEngine::Stats stats = engine.stats();
  EXPECT_EQ(stats.queries_served, 20);
  // 20 jobs on one worker at max_batch 8 drain in at most 3 wakeups.
  EXPECT_LE(stats.batches, 3);
  EXPECT_EQ(stats.snapshots_acquired, stats.batches);
}

// The paper-§6 bridge: perturbations map to the equivalent corpus update.
TEST(EngineTest, PerturbationBridge) {
  Perturbation weight_perturbation;
  weight_perturbation.type = PerturbationType::kWeightDecrease;
  weight_perturbation.u = 3;
  weight_perturbation.old_value = 0.9;
  weight_perturbation.new_value = 0.4;
  const CorpusUpdate weight_update =
      CorpusUpdate::FromPerturbation(weight_perturbation);
  EXPECT_EQ(weight_update.kind, CorpusUpdate::Kind::kSetWeight);
  EXPECT_EQ(weight_update.u, 3);
  EXPECT_DOUBLE_EQ(weight_update.value, 0.4);

  Perturbation distance_perturbation;
  distance_perturbation.type = PerturbationType::kDistanceIncrease;
  distance_perturbation.u = 1;
  distance_perturbation.v = 5;
  distance_perturbation.old_value = 1.2;
  distance_perturbation.new_value = 1.9;
  const CorpusUpdate distance_update =
      CorpusUpdate::FromPerturbation(distance_perturbation);
  EXPECT_EQ(distance_update.kind, CorpusUpdate::Kind::kSetDistance);
  EXPECT_EQ(distance_update.u, 1);
  EXPECT_EQ(distance_update.v, 5);
  EXPECT_DOUBLE_EQ(distance_update.value, 1.9);
}

// One update epoch racing a stream of queries: every answer must equal the
// reference answer on the pre-update or post-update version — never a
// torn mix of the two.
TEST(EngineTest, QueriesDuringUpdateMatchPreOrPostAnswer) {
  DiversificationEngine engine =
      MakeEngine(18, 11, 0.4, {.num_workers = 3, .max_batch = 2});
  const SnapshotPtr pre = engine.corpus().snapshot();

  Query query;
  query.p = 4;
  std::vector<std::future<QueryResult>> futures;
  std::thread writer([&engine] {
    // A weight spike plus a distance rewrite: both change the greedy
    // answer with high probability.
    const std::vector<CorpusUpdate> updates = {
        CorpusUpdate::SetWeight(0, 25.0),
        CorpusUpdate::SetDistance(1, 2, 2.0)};
    engine.ApplyUpdates(updates);
  });
  for (int i = 0; i < 40; ++i) futures.push_back(engine.Submit(query));
  writer.join();
  const SnapshotPtr post = engine.corpus().snapshot();

  const std::vector<int> pre_answer = ReferenceGreedy(*pre, 4);
  const std::vector<int> post_answer = ReferenceGreedy(*post, 4);
  for (auto& future : futures) {
    const QueryResult result = future.get();
    if (result.corpus_version == pre->version()) {
      EXPECT_EQ(result.elements, pre_answer);
    } else {
      EXPECT_EQ(result.corpus_version, post->version());
      EXPECT_EQ(result.elements, post_answer);
    }
  }
}

// Sustained stress: a writer publishing many epochs (weights, distances,
// inserts, erases) while readers query concurrently. Every result must be
// exactly the reference answer computed on the snapshot of the version it
// reports — the snapshot-isolation contract, checked under ASan/UBSan in
// the sanitizer CI configurations.
TEST(EngineTest, ConcurrentUpdateStressServesConsistentVersions) {
  DiversificationEngine engine =
      MakeEngine(24, 12, 0.3, {.num_workers = 3, .max_batch = 3});

  std::map<std::uint64_t, SnapshotPtr> versions;
  versions[0] = engine.corpus().snapshot();

  constexpr int kEpochs = 25;
  std::thread writer([&engine, &versions] {
    Rng rng(99);
    for (int epoch = 0; epoch < kEpochs; ++epoch) {
      std::vector<CorpusUpdate> updates;
      const int n = engine.corpus().snapshot()->universe_size();
      updates.push_back(
          CorpusUpdate::SetWeight(rng.UniformInt(0, n - 1), rng.Uniform()));
      const int u = rng.UniformInt(0, n - 2);
      updates.push_back(CorpusUpdate::SetDistance(
          u, rng.UniformInt(u + 1, n - 1), rng.Uniform(1.0, 2.0)));
      if (epoch % 7 == 3) {
        std::vector<double> distances(n);
        for (double& d : distances) d = rng.Uniform(1.0, 2.0);
        updates.push_back(
            CorpusUpdate::Insert(rng.Uniform(), std::move(distances)));
      }
      if (epoch % 11 == 5) {
        updates.push_back(CorpusUpdate::Erase(rng.UniformInt(0, n - 1)));
      }
      engine.ApplyUpdates(updates);
      // The writer is the only mutator, so the snapshot taken right after
      // Apply is exactly the version it published.
      SnapshotPtr snapshot = engine.corpus().snapshot();
      versions[snapshot->version()] = std::move(snapshot);
      std::this_thread::yield();
    }
  });

  Query query;
  query.p = 5;
  std::vector<std::future<QueryResult>> futures;
  for (int i = 0; i < 120; ++i) {
    futures.push_back(engine.Submit(query));
    if (i % 4 == 0) std::this_thread::yield();
  }
  writer.join();

  ASSERT_EQ(versions.size(), static_cast<std::size_t>(kEpochs) + 1);
  for (auto& future : futures) {
    const QueryResult result = future.get();
    const auto it = versions.find(result.corpus_version);
    ASSERT_NE(it, versions.end()) << "unknown version served";
    const CorpusSnapshot& snapshot = *it->second;
    EXPECT_EQ(result.elements, ReferenceGreedy(snapshot, 5));
    EXPECT_NEAR(result.objective,
                snapshot.problem().Objective(result.elements), 1e-9);
    for (int e : result.elements) EXPECT_TRUE(snapshot.alive(e));
  }
}

TEST(ShardAssignmentTest, PartitionsEveryCandidateExactlyOnce) {
  std::vector<int> candidates;
  for (int e = 0; e < 97; e += 2) candidates.push_back(e);
  const std::vector<std::vector<int>> shards =
      AssignShards(candidates, 5, /*salt=*/123);
  ASSERT_EQ(shards.size(), 5u);
  std::vector<int> recovered;
  for (const std::vector<int>& shard : shards) {
    for (int e : shard) {
      recovered.push_back(e);
      EXPECT_EQ(ShardOf(123, e, 5),
                static_cast<int>(&shard - shards.data()));
    }
  }
  std::sort(recovered.begin(), recovered.end());
  EXPECT_EQ(recovered, candidates);
}

TEST(ShardAssignmentTest, StableUnderCandidateReordering) {
  // The shard of an element depends only on (salt, element, num_shards) —
  // not on how the candidate list is ordered or what else it contains.
  for (int e : {0, 1, 17, 1000, 123456}) {
    const int shard = ShardOf(7, e, 8);
    EXPECT_GE(shard, 0);
    EXPECT_LT(shard, 8);
    EXPECT_EQ(ShardOf(7, e, 8), shard);
  }
}

TEST(DistributedGreedyTest, DeterministicGivenSeed) {
  Rng data_rng(13);
  Dataset data = MakeUniformSynthetic(40, data_rng);
  const ModularFunction weights(data.weights);
  const DiversificationProblem problem(&data.metric, &weights, 0.2);
  Rng rng_a(77);
  Rng rng_b(77);
  const AlgorithmResult a =
      DistributedGreedy(problem, {.p = 6, .num_shards = 4}, rng_a);
  const AlgorithmResult b =
      DistributedGreedy(problem, {.p = 6, .num_shards = 4}, rng_b);
  EXPECT_EQ(a.elements, b.elements);
  EXPECT_DOUBLE_EQ(a.objective, b.objective);
}

}  // namespace
}  // namespace engine
}  // namespace diverse
