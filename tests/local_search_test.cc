#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "algorithms/brute_force.h"
#include "algorithms/greedy_vertex.h"
#include "algorithms/local_search.h"
#include "core/diversification_problem.h"
#include "data/synthetic.h"
#include "matroid/graphic_matroid.h"
#include "matroid/partition_matroid.h"
#include "matroid/transversal_matroid.h"
#include "matroid/uniform_matroid.h"
#include "submodular/coverage_function.h"
#include "submodular/modular_function.h"
#include "util/random.h"

namespace diverse {
namespace {

TEST(LocalSearchTest, ReturnsABasis) {
  Rng rng(1);
  Dataset data = MakeUniformSynthetic(12, rng);
  const ModularFunction weights(data.weights);
  const DiversificationProblem problem(&data.metric, &weights, 0.2);
  const PartitionMatroid matroid({0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2},
                                 {2, 1, 2});
  const AlgorithmResult result = LocalSearch(problem, matroid, {});
  EXPECT_EQ(static_cast<int>(result.elements.size()), matroid.rank());
  EXPECT_TRUE(matroid.IsIndependent(result.elements));
}

TEST(LocalSearchTest, LocallyOptimalUnderSingleSwaps) {
  Rng rng(2);
  Dataset data = MakeUniformSynthetic(10, rng);
  const ModularFunction weights(data.weights);
  const DiversificationProblem problem(&data.metric, &weights, 0.2);
  const UniformMatroid matroid(10, 4);
  const AlgorithmResult result = LocalSearch(problem, matroid, {});
  // No single swap may improve the objective.
  for (int out : result.elements) {
    for (int in = 0; in < 10; ++in) {
      if (std::find(result.elements.begin(), result.elements.end(), in) !=
          result.elements.end()) {
        continue;
      }
      std::vector<int> swapped;
      for (int e : result.elements) {
        if (e != out) swapped.push_back(e);
      }
      swapped.push_back(in);
      EXPECT_LE(problem.Objective(swapped), result.objective + 1e-9);
    }
  }
}

TEST(LocalSearchTest, RespectsInitialSet) {
  Rng rng(3);
  Dataset data = MakeUniformSynthetic(8, rng);
  const ModularFunction weights(data.weights);
  const DiversificationProblem problem(&data.metric, &weights, 0.2);
  const UniformMatroid matroid(8, 3);
  LocalSearchOptions options;
  options.initial = {0, 1, 2};
  options.max_swaps = 0;  // no searching: result is the completed initial set
  const AlgorithmResult result = LocalSearch(problem, matroid, options);
  EXPECT_EQ(result.elements, (std::vector<int>{0, 1, 2}));
}

TEST(LocalSearchTest, MaxSwapsLimitsWork) {
  Rng rng(4);
  Dataset data = MakeUniformSynthetic(20, rng);
  const ModularFunction weights(data.weights);
  const DiversificationProblem problem(&data.metric, &weights, 0.2);
  const UniformMatroid matroid(20, 6);
  LocalSearchOptions options;
  options.initial = {0, 1, 2, 3, 4, 5};  // deliberately poor start
  options.max_swaps = 2;
  const AlgorithmResult result = LocalSearch(problem, matroid, options);
  EXPECT_LE(result.steps, 2);
}

TEST(LocalSearchTest, EpsilonStopsEarly) {
  Rng rng(5);
  Dataset data = MakeUniformSynthetic(15, rng);
  const ModularFunction weights(data.weights);
  const DiversificationProblem problem(&data.metric, &weights, 0.2);
  const UniformMatroid matroid(15, 5);
  LocalSearchOptions strict;
  strict.epsilon = 0.5;  // only accept enormous improvements
  const AlgorithmResult with_eps = LocalSearch(problem, matroid, strict);
  const AlgorithmResult without = LocalSearch(problem, matroid, {});
  EXPECT_LE(with_eps.steps, without.steps);
  EXPECT_LE(with_eps.objective, without.objective + 1e-9);
}

// Theorem 2: 2-approximation for arbitrary matroid constraints, checked
// against brute force over bases.
struct MatroidCase {
  int seed;
  double lambda;
};

class LocalSearchMatroidSweep : public ::testing::TestWithParam<MatroidCase> {
};

TEST_P(LocalSearchMatroidSweep, UniformWithinFactorTwo) {
  const MatroidCase c = GetParam();
  Rng rng(c.seed);
  Dataset data = MakeUniformSynthetic(11, rng);
  const ModularFunction weights(data.weights);
  const DiversificationProblem problem(&data.metric, &weights, c.lambda);
  const UniformMatroid matroid(11, 4);
  const AlgorithmResult ls = LocalSearch(problem, matroid, {});
  const AlgorithmResult opt = BruteForceMatroid(problem, matroid);
  EXPECT_GE(ls.objective * 2.0 + 1e-9, opt.objective);
  EXPECT_LE(ls.objective, opt.objective + 1e-9);
}

TEST_P(LocalSearchMatroidSweep, PartitionWithinFactorTwo) {
  const MatroidCase c = GetParam();
  Rng rng(c.seed + 100);
  Dataset data = MakeUniformSynthetic(12, rng);
  const ModularFunction weights(data.weights);
  const DiversificationProblem problem(&data.metric, &weights, c.lambda);
  const PartitionMatroid matroid({0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2},
                                 {1, 2, 1});
  const AlgorithmResult ls = LocalSearch(problem, matroid, {});
  const AlgorithmResult opt = BruteForceMatroid(problem, matroid);
  EXPECT_GE(ls.objective * 2.0 + 1e-9, opt.objective);
}

TEST_P(LocalSearchMatroidSweep, TransversalWithinFactorTwo) {
  const MatroidCase c = GetParam();
  Rng rng(c.seed + 200);
  Dataset data = MakeUniformSynthetic(10, rng);
  const ModularFunction weights(data.weights);
  const DiversificationProblem problem(&data.metric, &weights, c.lambda);
  const TransversalMatroid matroid(
      10, {{0, 1, 2, 3}, {3, 4, 5}, {5, 6, 7}, {7, 8, 9}});
  const AlgorithmResult ls = LocalSearch(problem, matroid, {});
  const AlgorithmResult opt = BruteForceMatroid(problem, matroid);
  EXPECT_GE(ls.objective * 2.0 + 1e-9, opt.objective);
}

TEST_P(LocalSearchMatroidSweep, GraphicWithinFactorTwo) {
  const MatroidCase c = GetParam();
  Rng rng(c.seed + 300);
  Dataset data = MakeUniformSynthetic(10, rng);
  const ModularFunction weights(data.weights);
  const DiversificationProblem problem(&data.metric, &weights, c.lambda);
  // 10 edges over 6 vertices.
  const GraphicMatroid matroid(6, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5},
                                   {5, 0}, {0, 2}, {1, 3}, {2, 4}, {3, 5}});
  const AlgorithmResult ls = LocalSearch(problem, matroid, {});
  const AlgorithmResult opt = BruteForceMatroid(problem, matroid);
  EXPECT_GE(ls.objective * 2.0 + 1e-9, opt.objective);
}

TEST_P(LocalSearchMatroidSweep, SubmodularCoverageWithinFactorTwo) {
  const MatroidCase c = GetParam();
  Rng rng(c.seed + 400);
  Dataset data = MakeUniformSynthetic(10, rng);
  std::vector<std::vector<int>> covers(10);
  for (auto& cv : covers) {
    cv = rng.SampleWithoutReplacement(8, rng.UniformInt(1, 4));
  }
  std::vector<double> topic_weights(8);
  for (double& w : topic_weights) w = rng.Uniform(0.2, 1.0);
  const CoverageFunction coverage(covers, topic_weights);
  const DiversificationProblem problem(&data.metric, &coverage, c.lambda);
  const PartitionMatroid matroid({0, 0, 0, 1, 1, 1, 1, 2, 2, 2}, {1, 2, 1});
  const AlgorithmResult ls = LocalSearch(problem, matroid, {});
  const AlgorithmResult opt = BruteForceMatroid(problem, matroid);
  EXPECT_GE(ls.objective * 2.0 + 1e-9, opt.objective);
}

INSTANTIATE_TEST_SUITE_P(Cases, LocalSearchMatroidSweep,
                         ::testing::Values(MatroidCase{1, 0.2},
                                           MatroidCase{2, 0.2},
                                           MatroidCase{3, 0.0},
                                           MatroidCase{4, 1.0},
                                           MatroidCase{5, 0.5},
                                           MatroidCase{6, 0.1},
                                           MatroidCase{7, 2.0},
                                           MatroidCase{8, 0.2},
                                           MatroidCase{9, 0.05},
                                           MatroidCase{10, 5.0},
                                           MatroidCase{11, 0.8},
                                           MatroidCase{12, 0.3}));

// The appendix counterexample: under a partition matroid, vertex greedy's
// ratio is unbounded while local search stays within 2.
TEST(AppendixCounterexampleTest, GreedyFailsLocalSearchSucceeds) {
  // Universe: A = {a, b} (block 0, capacity 1), C = {c_1..c_r} (block 1,
  // capacity r). q(a) = l + eps, all other weights 0. d(b, x) = l for all
  // x; d(u, v) = eps otherwise. eps = 1/C(r,2), l = 1.
  const int r = 8;
  const double eps = 1.0 / (r * (r - 1) / 2);
  const double l = 1.0;
  const int n = 2 + r;  // 0 = a, 1 = b, 2.. = c_i
  DenseMetric metric(n);
  for (int u = 0; u < n; ++u) {
    for (int v = u + 1; v < n; ++v) {
      metric.SetDistance(u, v, (u == 1 || v == 1) ? l : eps);
    }
  }
  std::vector<double> q(n, 0.0);
  q[0] = l + eps;
  const ModularFunction weights(q);
  const DiversificationProblem problem(&metric, &weights, 1.0);
  std::vector<int> block_of(n, 1);
  block_of[0] = block_of[1] = 0;
  const PartitionMatroid matroid(block_of, {1, r});

  // Vertex-greedy analogue restricted to the matroid: start from the best
  // feasible singleton (that's `a`) and add the best feasible element each
  // round — reproduce the appendix's greedy trajectory by hand.
  std::vector<int> greedy_set = {0};
  while (true) {
    int best = -1;
    double best_gain = -1.0;
    for (int u = 0; u < n; ++u) {
      if (std::find(greedy_set.begin(), greedy_set.end(), u) !=
          greedy_set.end()) {
        continue;
      }
      if (!matroid.CanAdd(greedy_set, u)) continue;
      std::vector<int> trial = greedy_set;
      trial.push_back(u);
      const double gain = problem.Objective(trial) -
                          problem.Objective(greedy_set);
      if (gain > best_gain) {
        best_gain = gain;
        best = u;
      }
    }
    if (best < 0) break;
    greedy_set.push_back(best);
  }
  const double greedy_value = problem.Objective(greedy_set);

  const AlgorithmResult ls = LocalSearch(problem, matroid, {});
  const AlgorithmResult opt = BruteForceMatroid(problem, matroid);

  // Optimal takes b + all of C: value ~ r*l. Greedy keeps a: value ~ l.
  EXPECT_GE(opt.objective / greedy_value, 3.0);
  EXPECT_GE(ls.objective * 2.0 + 1e-9, opt.objective);
}

TEST(LocalSearchTest, ImprovesOnGreedyInitialization) {
  // The paper's §7 protocol: LS initialized from Greedy B can only improve.
  Rng rng(6);
  Dataset data = MakeUniformSynthetic(30, rng);
  const ModularFunction weights(data.weights);
  const DiversificationProblem problem(&data.metric, &weights, 0.2);
  const AlgorithmResult greedy = GreedyVertex(problem, {.p = 8});
  const UniformMatroid matroid(30, 8);
  LocalSearchOptions options;
  options.initial = greedy.elements;
  const AlgorithmResult ls = LocalSearch(problem, matroid, options);
  EXPECT_GE(ls.objective + 1e-9, greedy.objective);
}

}  // namespace
}  // namespace diverse
