#include <gtest/gtest.h>

#include <vector>

#include "matroid/graphic_matroid.h"
#include "matroid/laminar_matroid.h"
#include "matroid/matroid.h"
#include "matroid/matroid_validation.h"
#include "matroid/partition_matroid.h"
#include "matroid/transversal_matroid.h"
#include "matroid/uniform_matroid.h"
#include "util/random.h"

namespace diverse {
namespace {

TEST(UniformMatroidTest, IndependenceBySize) {
  const UniformMatroid m(6, 3);
  EXPECT_TRUE(m.IsIndependent(std::vector<int>{}));
  EXPECT_TRUE(m.IsIndependent(std::vector<int>{0, 1, 2}));
  EXPECT_FALSE(m.IsIndependent(std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(m.rank(), 3);
}

TEST(UniformMatroidTest, CanAddAndExchange) {
  const UniformMatroid m(6, 2);
  const std::vector<int> s = {0, 1};
  EXPECT_FALSE(m.CanAdd(s, 2));
  EXPECT_TRUE(m.CanExchange(s, 0, 5));
  EXPECT_TRUE(m.CanAdd(std::vector<int>{0}, 2));
}

TEST(UniformMatroidTest, SatisfiesAxioms) {
  EXPECT_TRUE(ValidateMatroid(UniformMatroid(7, 3)).IsMatroid());
  EXPECT_TRUE(ValidateMatroid(UniformMatroid(5, 0)).IsMatroid());
  EXPECT_TRUE(ValidateMatroid(UniformMatroid(5, 5)).IsMatroid());
}

TEST(PartitionMatroidTest, RespectsBlockCapacities) {
  // Blocks: {0,1,2} cap 1, {3,4} cap 2.
  const PartitionMatroid m({0, 0, 0, 1, 1}, {1, 2});
  EXPECT_TRUE(m.IsIndependent(std::vector<int>{0, 3, 4}));
  EXPECT_FALSE(m.IsIndependent(std::vector<int>{0, 1}));
  EXPECT_EQ(m.rank(), 3);
}

TEST(PartitionMatroidTest, RankCapsAtBlockSizes) {
  // Capacity larger than the block: rank contribution is the block size.
  const PartitionMatroid m({0, 0, 1}, {5, 1});
  EXPECT_EQ(m.rank(), 3);
}

TEST(PartitionMatroidTest, CanAddMatchesIsIndependent) {
  const PartitionMatroid m({0, 0, 1, 1, 2}, {1, 1, 1});
  const std::vector<int> s = {0, 2};
  EXPECT_FALSE(m.CanAdd(s, 1));
  EXPECT_FALSE(m.CanAdd(s, 3));
  EXPECT_TRUE(m.CanAdd(s, 4));
}

TEST(PartitionMatroidTest, SatisfiesAxioms) {
  EXPECT_TRUE(
      ValidateMatroid(PartitionMatroid({0, 0, 1, 1, 2, 2}, {1, 2, 1}))
          .IsMatroid());
}

TEST(TransversalMatroidTest, RequiresDistinctRepresentatives) {
  // C1 = {0,1}, C2 = {1,2}. {0,2} independent, {0,1} independent,
  // {0,1,2} dependent (only two sets).
  const TransversalMatroid m(3, {{0, 1}, {1, 2}});
  EXPECT_TRUE(m.IsIndependent(std::vector<int>{0, 2}));
  EXPECT_TRUE(m.IsIndependent(std::vector<int>{0, 1}));
  EXPECT_TRUE(m.IsIndependent(std::vector<int>{1, 2}));
  EXPECT_FALSE(m.IsIndependent(std::vector<int>{0, 1, 2}));
  EXPECT_EQ(m.rank(), 2);
}

TEST(TransversalMatroidTest, ElementOutsideAllSetsIsDependent) {
  const TransversalMatroid m(3, {{0}});
  EXPECT_FALSE(m.IsIndependent(std::vector<int>{1}));
  EXPECT_FALSE(m.IsIndependent(std::vector<int>{2}));
  EXPECT_TRUE(m.IsIndependent(std::vector<int>{0}));
  EXPECT_EQ(m.rank(), 1);
}

TEST(TransversalMatroidTest, MatchingNeedsAugmentingPaths) {
  // C1 = {0,1}, C2 = {0}. {0,1}: match 0->C2, 1->C1 (needs augmentation if
  // 0 grabbed C1 first).
  const TransversalMatroid m(2, {{0, 1}, {0}});
  EXPECT_TRUE(m.IsIndependent(std::vector<int>{0, 1}));
}

TEST(TransversalMatroidTest, SatisfiesAxioms) {
  const TransversalMatroid m(6, {{0, 1, 2}, {2, 3}, {3, 4, 5}, {5, 0}});
  EXPECT_TRUE(ValidateMatroid(m).IsMatroid());
}

TEST(GraphicMatroidTest, ForestsAreIndependent) {
  // Triangle on vertices {0,1,2}: edges 0=(0,1), 1=(1,2), 2=(0,2).
  const GraphicMatroid m(3, {{0, 1}, {1, 2}, {0, 2}});
  EXPECT_TRUE(m.IsIndependent(std::vector<int>{0, 1}));
  EXPECT_FALSE(m.IsIndependent(std::vector<int>{0, 1, 2}));  // cycle
  EXPECT_EQ(m.rank(), 2);
}

TEST(GraphicMatroidTest, SelfLoopIsDependent) {
  const GraphicMatroid m(2, {{0, 0}, {0, 1}});
  EXPECT_FALSE(m.IsIndependent(std::vector<int>{0}));
  EXPECT_TRUE(m.IsIndependent(std::vector<int>{1}));
  EXPECT_EQ(m.rank(), 1);
}

TEST(GraphicMatroidTest, ParallelEdgesFormCycle) {
  const GraphicMatroid m(2, {{0, 1}, {0, 1}});
  EXPECT_TRUE(m.IsIndependent(std::vector<int>{0}));
  EXPECT_FALSE(m.IsIndependent(std::vector<int>{0, 1}));
}

TEST(GraphicMatroidTest, SatisfiesAxioms) {
  // K4: 6 edges, rank 3.
  const GraphicMatroid m(
      4, {{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}});
  EXPECT_EQ(m.rank(), 3);
  EXPECT_TRUE(ValidateMatroid(m).IsMatroid());
}

TEST(LaminarMatroidTest, NestedCapacities) {
  // Family: {0,1,2,3} cap 3; {0,1} cap 1.
  const LaminarMatroid m(4, {{0, 1, 2, 3}, {0, 1}}, {3, 1});
  EXPECT_TRUE(m.IsIndependent(std::vector<int>{0, 2, 3}));
  EXPECT_FALSE(m.IsIndependent(std::vector<int>{0, 1}));
  EXPECT_FALSE(m.IsIndependent(std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(m.rank(), 3);
}

TEST(LaminarMatroidTest, RejectsNonLaminarFamily) {
  EXPECT_DEATH(LaminarMatroid(4, {{0, 1}, {1, 2}}, {1, 1}), "laminar");
}

TEST(LaminarMatroidTest, GeneralizesPartition) {
  const LaminarMatroid laminar(5, {{0, 1}, {2, 3, 4}}, {1, 2});
  const PartitionMatroid partition({0, 0, 1, 1, 1}, {1, 2});
  // Same independent sets on a few probes.
  for (const auto& probe :
       std::vector<std::vector<int>>{{0}, {0, 1}, {0, 2, 3}, {2, 3, 4},
                                     {0, 2, 3, 4}, {1, 3}}) {
    EXPECT_EQ(laminar.IsIndependent(probe), partition.IsIndependent(probe));
  }
  EXPECT_EQ(laminar.rank(), partition.rank());
}

TEST(LaminarMatroidTest, SatisfiesAxioms) {
  const LaminarMatroid m(6, {{0, 1, 2, 3, 4, 5}, {0, 1, 2}, {0, 1}, {4, 5}},
                         {4, 2, 1, 1});
  EXPECT_TRUE(ValidateMatroid(m).IsMatroid());
}

TEST(ExtendToBasisTest, ReachesRank) {
  const PartitionMatroid m({0, 0, 1, 1, 2}, {1, 1, 1});
  const std::vector<int> basis = ExtendToBasis(m, {1});
  EXPECT_EQ(static_cast<int>(basis.size()), m.rank());
  EXPECT_TRUE(m.IsIndependent(basis));
}

TEST(ExtendToBasisTest, KeepsSeedElements) {
  const UniformMatroid m(6, 3);
  const std::vector<int> basis = ExtendToBasis(m, {4, 5});
  EXPECT_EQ(basis.size(), 3u);
  EXPECT_EQ(basis[0], 4);
  EXPECT_EQ(basis[1], 5);
}

TEST(EnumerateBasesTest, CountsUniformBases) {
  const UniformMatroid m(5, 2);
  EXPECT_EQ(EnumerateBases(m).size(), 10u);  // C(5,2)
}

TEST(EnumerateBasesTest, AllBasesIndependentAndMaximal) {
  const TransversalMatroid m(5, {{0, 1, 2}, {2, 3}, {3, 4}});
  const auto bases = EnumerateBases(m);
  ASSERT_FALSE(bases.empty());
  for (const auto& b : bases) {
    EXPECT_EQ(static_cast<int>(b.size()), m.rank());
    EXPECT_TRUE(m.IsIndependent(b));
  }
}

TEST(MatroidValidationTest, DetectsNonMatroid) {
  // "Independent iff size != 2" violates hereditary.
  class Broken : public Matroid {
   public:
    int ground_size() const override { return 4; }
    bool IsIndependent(std::span<const int> set) const override {
      return set.size() != 2;
    }
    int rank() const override { return 4; }
  };
  const Broken m;
  const MatroidReport report = ValidateMatroid(m);
  EXPECT_FALSE(report.hereditary);
  EXPECT_FALSE(report.IsMatroid());
}

class RandomTransversalSweep : public ::testing::TestWithParam<int> {};

TEST_P(RandomTransversalSweep, RandomCollectionsAreMatroids) {
  Rng rng(GetParam());
  const int n = 7;
  const int m = rng.UniformInt(1, 4);
  std::vector<std::vector<int>> collections(m);
  for (auto& c : collections) {
    c = rng.SampleWithoutReplacement(n, rng.UniformInt(1, n));
  }
  const TransversalMatroid matroid(n, collections);
  EXPECT_TRUE(ValidateMatroid(matroid).IsMatroid());
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomTransversalSweep,
                         ::testing::Range(1, 13));

class RandomGraphicSweep : public ::testing::TestWithParam<int> {};

TEST_P(RandomGraphicSweep, RandomGraphsAreMatroids) {
  Rng rng(GetParam());
  const int vertices = rng.UniformInt(3, 5);
  const int edges = rng.UniformInt(3, 8);
  std::vector<std::pair<int, int>> edge_list;
  for (int e = 0; e < edges; ++e) {
    edge_list.emplace_back(rng.UniformInt(0, vertices - 1),
                           rng.UniformInt(0, vertices - 1));
  }
  const GraphicMatroid matroid(vertices, edge_list);
  EXPECT_TRUE(ValidateMatroid(matroid).IsMatroid());
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomGraphicSweep, ::testing::Range(20, 32));

}  // namespace
}  // namespace diverse
