#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "data/dataset.h"
#include "data/letor_sim.h"
#include "data/synthetic.h"
#include "metric/metric_validation.h"
#include "util/random.h"

namespace diverse {
namespace {

TEST(SyntheticTest, UniformRangesRespected) {
  Rng rng(1);
  const Dataset data = MakeUniformSynthetic(30, rng, 0.0, 1.0, 1.0, 2.0);
  EXPECT_EQ(data.size(), 30);
  for (double w : data.weights) {
    EXPECT_GE(w, 0.0);
    EXPECT_LE(w, 1.0);
  }
  for (int u = 0; u < 30; ++u) {
    for (int v = u + 1; v < 30; ++v) {
      EXPECT_GE(data.metric.Distance(u, v), 1.0);
      EXPECT_LE(data.metric.Distance(u, v), 2.0);
    }
  }
}

TEST(SyntheticTest, AlwaysAMetric) {
  for (int seed = 1; seed <= 10; ++seed) {
    Rng rng(seed);
    const Dataset data = MakeUniformSynthetic(12, rng);
    EXPECT_TRUE(ValidateMetric(data.metric).IsMetric());
  }
}

TEST(SyntheticTest, DeterministicForSeed) {
  Rng a(9);
  Rng b(9);
  const Dataset da = MakeUniformSynthetic(10, a);
  const Dataset db = MakeUniformSynthetic(10, b);
  for (int i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(da.weights[i], db.weights[i]);
  }
  EXPECT_DOUBLE_EQ(da.metric.Distance(2, 7), db.metric.Distance(2, 7));
}

TEST(SyntheticTest, RejectsMetricBreakingRange) {
  Rng rng(2);
  EXPECT_DEATH(MakeUniformSynthetic(5, rng, 0.0, 1.0, 0.5, 2.0), "metric");
}

TEST(ClusteredTest, GeneratesValidMetric) {
  Rng rng(3);
  ClusteredConfig config;
  config.n = 25;
  config.num_clusters = 4;
  const Dataset data = MakeClusteredEuclidean(config, rng);
  EXPECT_EQ(data.size(), 25);
  EXPECT_TRUE(ValidateMetric(data.metric, 1e-6).IsMetric());
}

TEST(ClusteredTest, HotClusterBonusRaisesWeights) {
  Rng rng(4);
  ClusteredConfig config;
  config.n = 200;
  config.num_clusters = 2;
  config.hot_cluster_bonus = 10.0;
  const Dataset data = MakeClusteredEuclidean(config, rng);
  int heavy = 0;
  for (double w : data.weights) {
    if (w > 5.0) ++heavy;
  }
  EXPECT_GT(heavy, 50);   // roughly half the points
  EXPECT_LT(heavy, 150);
}

TEST(DatasetTest, RestrictReindexes) {
  Rng rng(5);
  const Dataset data = MakeUniformSynthetic(10, rng);
  const std::vector<int> keep = {7, 2, 9};
  const Dataset sub = Restrict(data, keep);
  EXPECT_EQ(sub.size(), 3);
  EXPECT_DOUBLE_EQ(sub.weights[0], data.weights[7]);
  EXPECT_DOUBLE_EQ(sub.weights[2], data.weights[9]);
  EXPECT_DOUBLE_EQ(sub.metric.Distance(0, 1), data.metric.Distance(7, 2));
  EXPECT_DOUBLE_EQ(sub.metric.Distance(1, 2), data.metric.Distance(2, 9));
}

TEST(DatasetTest, TopKByWeightOrdersDescending) {
  Dataset data(5);
  data.weights = {0.1, 0.9, 0.5, 0.9, 0.2};
  const std::vector<int> top = TopKByWeight(data, 3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0], 1);  // stable: index 1 before 3 at weight 0.9
  EXPECT_EQ(top[1], 3);
  EXPECT_EQ(top[2], 2);
}

TEST(LetorSimTest, GradesInRangeAndSkewed) {
  Rng rng(6);
  LetorConfig config;
  config.num_documents = 500;
  const LetorQuery query = MakeLetorQuery(config, rng);
  ASSERT_EQ(query.size(), 500);
  std::vector<int> histogram(6, 0);
  for (int g : query.relevance) {
    ASSERT_GE(g, 0);
    ASSERT_LE(g, 5);
    ++histogram[g];
  }
  // Skew: grade 0 strictly more common than grade 5.
  EXPECT_GT(histogram[0], histogram[5]);
  // Weights mirror grades.
  for (int i = 0; i < query.size(); ++i) {
    EXPECT_DOUBLE_EQ(query.data.weights[i],
                     static_cast<double>(query.relevance[i]));
  }
}

TEST(LetorSimTest, CosineDistancesInZeroOne) {
  Rng rng(7);
  LetorConfig config;
  config.num_documents = 60;
  const LetorQuery query = MakeLetorQuery(config, rng);
  for (int u = 0; u < query.size(); ++u) {
    for (int v = u + 1; v < query.size(); ++v) {
      const double d = query.data.metric.Distance(u, v);
      EXPECT_GE(d, 0.0);
      // Non-negative feature vectors: cosine in [0,1] so distance in [0,1].
      EXPECT_LE(d, 1.0 + 1e-12);
    }
  }
}

TEST(LetorSimTest, FeaturesAreNonNegativeAndRightDimension) {
  Rng rng(8);
  LetorConfig config;
  config.num_documents = 40;
  config.dimension = 46;
  const LetorQuery query = MakeLetorQuery(config, rng);
  for (const auto& f : query.features) {
    ASSERT_EQ(f.size(), 46u);
    for (double x : f) EXPECT_GE(x, 0.0);
  }
}

TEST(LetorSimTest, TopKDocumentsKeepsHeaviest) {
  Rng rng(9);
  LetorConfig config;
  config.num_documents = 100;
  const LetorQuery query = MakeLetorQuery(config, rng);
  const LetorQuery top = TopKDocuments(query, 20);
  EXPECT_EQ(top.size(), 20);
  // Smallest kept grade >= largest dropped grade.
  int min_kept = 5;
  for (int g : top.relevance) min_kept = std::min(min_kept, g);
  std::multiset<int> all(query.relevance.begin(), query.relevance.end());
  std::multiset<int> kept(top.relevance.begin(), top.relevance.end());
  for (int g : kept) all.erase(all.find(g));
  for (int g : all) EXPECT_LE(g, min_kept);
}

TEST(LetorSimTest, AspectClusteringMakesIntraAspectPairsCloser) {
  // Statistical property: the generator builds documents around aspect
  // prototypes, so the distribution of pairwise distances should have
  // meaningful spread (not collapse to a point).
  Rng rng(10);
  LetorConfig config;
  config.num_documents = 80;
  const LetorQuery query = MakeLetorQuery(config, rng);
  double min_d = 1.0;
  double max_d = 0.0;
  for (int u = 0; u < query.size(); ++u) {
    for (int v = u + 1; v < query.size(); ++v) {
      const double d = query.data.metric.Distance(u, v);
      min_d = std::min(min_d, d);
      max_d = std::max(max_d, d);
    }
  }
  EXPECT_LT(min_d, 0.05);  // same-aspect neighbours are close
  EXPECT_GT(max_d, 0.05);  // cross-aspect pairs are farther
}

}  // namespace
}  // namespace diverse
