#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "algorithms/brute_force.h"
#include "algorithms/greedy_edge.h"
#include "algorithms/greedy_vertex.h"
#include "algorithms/matching.h"
#include "core/diversification_problem.h"
#include "data/synthetic.h"
#include "metric/metric_utils.h"
#include "metric/metric_validation.h"
#include "submodular/coverage_function.h"
#include "submodular/facility_location.h"
#include "submodular/modular_function.h"
#include "submodular/set_function.h"
#include "util/random.h"

namespace diverse {
namespace {

bool AllDistinct(const std::vector<int>& v) {
  std::set<int> s(v.begin(), v.end());
  return s.size() == v.size();
}

TEST(GreedyVertexTest, SelectsExactlyP) {
  Rng rng(1);
  Dataset data = MakeUniformSynthetic(20, rng);
  const ModularFunction weights(data.weights);
  const DiversificationProblem problem(&data.metric, &weights, 0.2);
  for (int p : {0, 1, 3, 10, 20}) {
    const AlgorithmResult result = GreedyVertex(problem, {.p = p});
    EXPECT_EQ(static_cast<int>(result.elements.size()), p);
    EXPECT_TRUE(AllDistinct(result.elements));
    EXPECT_NEAR(result.objective, problem.Objective(result.elements), 1e-9);
  }
}

TEST(GreedyVertexTest, PLargerThanNSelectsAll) {
  Rng rng(2);
  Dataset data = MakeUniformSynthetic(5, rng);
  const ModularFunction weights(data.weights);
  const DiversificationProblem problem(&data.metric, &weights, 0.2);
  const AlgorithmResult result = GreedyVertex(problem, {.p = 99});
  EXPECT_EQ(result.elements.size(), 5u);
}

TEST(GreedyVertexTest, FirstPickMaximizesHalfWeight) {
  // With an empty set the potential is 1/2 f(u): the heaviest element wins.
  Rng rng(3);
  Dataset data = MakeUniformSynthetic(10, rng);
  data.weights[7] = 5.0;  // clear maximum
  const ModularFunction weights(data.weights);
  const DiversificationProblem problem(&data.metric, &weights, 0.2);
  const AlgorithmResult result = GreedyVertex(problem, {.p = 3});
  EXPECT_EQ(result.elements[0], 7);
}

TEST(GreedyVertexTest, PureRelevanceWhenLambdaZeroModular) {
  Rng rng(4);
  Dataset data = MakeUniformSynthetic(12, rng);
  const ModularFunction weights(data.weights);
  const DiversificationProblem problem(&data.metric, &weights, 0.0);
  const AlgorithmResult result = GreedyVertex(problem, {.p = 4});
  // Must pick the 4 heaviest elements.
  std::vector<int> order(12);
  for (int i = 0; i < 12; ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    return data.weights[a] > data.weights[b];
  });
  const std::set<int> expect(order.begin(), order.begin() + 4);
  const std::set<int> got(result.elements.begin(), result.elements.end());
  EXPECT_EQ(got, expect);
}

TEST(GreedyVertexTest, ZeroFunctionIsDispersionGreedy) {
  // Corollary 1: with f == 0 the algorithm greedily maximizes d_u(S).
  Rng rng(5);
  Dataset data = MakeUniformSynthetic(15, rng);
  const ZeroFunction zero(15);
  const DiversificationProblem problem(&data.metric, &zero, 1.0);
  const AlgorithmResult result = GreedyVertex(problem, {.p = 5});
  EXPECT_EQ(result.elements.size(), 5u);
  EXPECT_NEAR(result.objective, SumPairwise(data.metric, result.elements),
              1e-9);
}

TEST(GreedyVertexTest, BestFirstPairNeverWorseOnAverage) {
  // Not a theorem, but the paper reports the improved variant helps; check
  // it at least never returns an infeasible or invalid result and usually
  // wins on random data.
  int wins = 0;
  int total = 0;
  for (int seed = 1; seed <= 20; ++seed) {
    Rng rng(seed);
    Dataset data = MakeUniformSynthetic(20, rng);
    const ModularFunction weights(data.weights);
    const DiversificationProblem problem(&data.metric, &weights, 0.2);
    const AlgorithmResult plain = GreedyVertex(problem, {.p = 5});
    const AlgorithmResult improved =
        GreedyVertex(problem, {.p = 5, .best_first_pair = true});
    EXPECT_EQ(improved.elements.size(), 5u);
    if (improved.objective >= plain.objective - 1e-9) ++wins;
    ++total;
  }
  EXPECT_GE(wins * 2, total);  // improved wins at least half the time
}

TEST(GreedyEdgeTest, SelectsExactlyP) {
  Rng rng(6);
  Dataset data = MakeUniformSynthetic(16, rng);
  const ModularFunction weights(data.weights);
  const DiversificationProblem problem(&data.metric, &weights, 0.2);
  for (int p : {1, 2, 3, 6, 7, 16}) {
    const AlgorithmResult result = GreedyEdge(problem, weights, {.p = p});
    EXPECT_EQ(static_cast<int>(result.elements.size()), p) << "p=" << p;
    EXPECT_TRUE(AllDistinct(result.elements));
  }
}

TEST(GreedyEdgeTest, ReducedDistanceIsMetric) {
  Rng rng(7);
  Dataset data = MakeUniformSynthetic(12, rng);
  const ModularFunction weights(data.weights);
  const int p = 5;
  DenseMetric reduced(12);
  for (int u = 0; u < 12; ++u) {
    for (int v = u + 1; v < 12; ++v) {
      reduced.SetDistance(
          u, v, ReducedDistance(weights, data.metric, 0.2, p, u, v));
    }
  }
  EXPECT_TRUE(ValidateMetric(reduced).IsMetric());
}

TEST(GreedyEdgeTest, ReducedDispersionEqualsObjective) {
  // sum_{pairs in S} d'(u,v) == f(S) + lambda d(S) for |S| = p.
  Rng rng(8);
  Dataset data = MakeUniformSynthetic(14, rng);
  const ModularFunction weights(data.weights);
  const DiversificationProblem problem(&data.metric, &weights, 0.2);
  const int p = 6;
  const std::vector<int> s = rng.SampleWithoutReplacement(14, p);
  double reduced_sum = 0.0;
  for (int i = 0; i < p; ++i) {
    for (int j = i + 1; j < p; ++j) {
      reduced_sum +=
          ReducedDistance(weights, data.metric, 0.2, p, s[i], s[j]);
    }
  }
  EXPECT_NEAR(reduced_sum, problem.Objective(s), 1e-9);
}

TEST(GreedyEdgeTest, BestLastVertexHelpsOnOddP) {
  int wins = 0;
  for (int seed = 1; seed <= 20; ++seed) {
    Rng rng(seed * 31);
    Dataset data = MakeUniformSynthetic(18, rng);
    const ModularFunction weights(data.weights);
    const DiversificationProblem problem(&data.metric, &weights, 0.2);
    const AlgorithmResult arbitrary = GreedyEdge(problem, weights, {.p = 5});
    const AlgorithmResult best =
        GreedyEdge(problem, weights, {.p = 5, .best_last_vertex = true});
    if (best.objective >= arbitrary.objective - 1e-9) ++wins;
  }
  EXPECT_GE(wins, 18);  // choosing the best last vertex can't hurt
}

// Theorem 1: Greedy B is a 2-approximation for monotone submodular f under
// a cardinality constraint. Verified against brute force across metric
// draws, lambda values, p values and quality families.
struct ApproxCase {
  int seed;
  int n;
  int p;
  double lambda;
};

class GreedyApproximationSweep : public ::testing::TestWithParam<ApproxCase> {
};

TEST_P(GreedyApproximationSweep, ModularWithinFactorTwo) {
  const ApproxCase c = GetParam();
  Rng rng(c.seed);
  Dataset data = MakeUniformSynthetic(c.n, rng);
  const ModularFunction weights(data.weights);
  const DiversificationProblem problem(&data.metric, &weights, c.lambda);
  const AlgorithmResult greedy = GreedyVertex(problem, {.p = c.p});
  const AlgorithmResult opt = BruteForceCardinality(problem, {.p = c.p});
  EXPECT_GE(greedy.objective * 2.0 + 1e-9, opt.objective);
  EXPECT_LE(greedy.objective, opt.objective + 1e-9);
}

TEST_P(GreedyApproximationSweep, GreedyEdgeWithinFactorTwoPlusLastVertex) {
  // Greedy A's guarantee (via HRT) holds for even p; for odd p the
  // arbitrary last vertex can only add value. We check the weaker but
  // always-valid statement phi(GreedyA) >= phi(OPT)/2 on even p.
  const ApproxCase c = GetParam();
  if (c.p % 2 != 0) GTEST_SKIP() << "HRT factor-2 statement is for even p";
  Rng rng(c.seed);
  Dataset data = MakeUniformSynthetic(c.n, rng);
  const ModularFunction weights(data.weights);
  const DiversificationProblem problem(&data.metric, &weights, c.lambda);
  const AlgorithmResult greedy = GreedyEdge(problem, weights, {.p = c.p});
  const AlgorithmResult opt = BruteForceCardinality(problem, {.p = c.p});
  EXPECT_GE(greedy.objective * 2.0 + 1e-9, opt.objective);
}

TEST_P(GreedyApproximationSweep, CoverageWithinFactorTwo) {
  const ApproxCase c = GetParam();
  Rng rng(c.seed + 1000);
  Dataset data = MakeUniformSynthetic(c.n, rng);
  std::vector<std::vector<int>> covers(c.n);
  for (auto& cv : covers) {
    cv = rng.SampleWithoutReplacement(10, rng.UniformInt(1, 5));
  }
  std::vector<double> topic_weights(10);
  for (double& w : topic_weights) w = rng.Uniform(0.2, 1.0);
  const CoverageFunction coverage(covers, topic_weights);
  const DiversificationProblem problem(&data.metric, &coverage, c.lambda);
  const AlgorithmResult greedy = GreedyVertex(problem, {.p = c.p});
  const AlgorithmResult opt = BruteForceCardinality(problem, {.p = c.p});
  EXPECT_GE(greedy.objective * 2.0 + 1e-9, opt.objective);
}

TEST_P(GreedyApproximationSweep, FacilityLocationWithinFactorTwo) {
  const ApproxCase c = GetParam();
  Rng rng(c.seed + 2000);
  Dataset data = MakeUniformSynthetic(c.n, rng);
  std::vector<std::vector<double>> sim(c.n, std::vector<double>(c.n));
  for (auto& row : sim) {
    for (double& x : row) x = rng.Uniform(0.0, 1.0);
  }
  const FacilityLocationFunction facility(sim);
  const DiversificationProblem problem(&data.metric, &facility, c.lambda);
  const AlgorithmResult greedy = GreedyVertex(problem, {.p = c.p});
  const AlgorithmResult opt = BruteForceCardinality(problem, {.p = c.p});
  EXPECT_GE(greedy.objective * 2.0 + 1e-9, opt.objective);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, GreedyApproximationSweep,
    ::testing::Values(ApproxCase{1, 10, 3, 0.2}, ApproxCase{2, 10, 4, 0.2},
                      ApproxCase{3, 12, 5, 0.2}, ApproxCase{4, 12, 4, 0.0},
                      ApproxCase{5, 12, 4, 1.0}, ApproxCase{6, 14, 6, 0.5},
                      ApproxCase{7, 14, 2, 0.2}, ApproxCase{8, 9, 8, 0.2},
                      ApproxCase{9, 11, 4, 2.0}, ApproxCase{10, 13, 6, 0.1},
                      ApproxCase{11, 16, 4, 0.05}, ApproxCase{12, 16, 6, 10.0},
                      ApproxCase{13, 8, 7, 0.3}, ApproxCase{14, 15, 3, 0.7},
                      ApproxCase{15, 10, 9, 0.2}, ApproxCase{16, 18, 5, 0.2},
                      ApproxCase{17, 12, 6, 5.0}, ApproxCase{18, 13, 2, 1.5},
                      ApproxCase{19, 17, 4, 0.4}, ApproxCase{20, 11, 5, 0.9}));

TEST(MatchingTest, ExactMatchingOnTinyGraph) {
  // 4 vertices; weights favor pairing (0,1) and (2,3).
  const int n = 4;
  std::vector<double> w(n * n, 0.0);
  auto set = [&](int i, int j, double v) {
    w[i * n + j] = v;
    w[j * n + i] = v;
  };
  set(0, 1, 10.0);
  set(2, 3, 8.0);
  set(0, 2, 1.0);
  set(1, 3, 1.0);
  set(0, 3, 1.0);
  set(1, 2, 1.0);
  const auto edges = MaxWeightMatchingExact(n, w, 2);
  ASSERT_EQ(edges.size(), 2u);
  double total = 0.0;
  for (const auto& [a, b] : edges) total += w[a * n + b];
  EXPECT_DOUBLE_EQ(total, 18.0);
}

TEST(MatchingTest, ExactBeatsGreedyWhenGreedyTrapsItself) {
  // Greedy takes the 10-edge (0,1), leaving only weight-1 pairs; optimal
  // 2-matching is (0,2)+(1,3) = 9+9 = 18 > 10 + 1.
  const int n = 4;
  std::vector<double> w(n * n, 0.0);
  auto set = [&](int i, int j, double v) {
    w[i * n + j] = v;
    w[j * n + i] = v;
  };
  set(0, 1, 10.0);
  set(0, 2, 9.0);
  set(1, 3, 9.0);
  set(2, 3, 1.0);
  set(0, 3, 1.0);
  set(1, 2, 1.0);
  const auto edges = MaxWeightMatchingExact(n, w, 2);
  double total = 0.0;
  for (const auto& [a, b] : edges) total += w[a * n + b];
  EXPECT_DOUBLE_EQ(total, 18.0);
}

TEST(MatchingTest, ZeroEdgesReturnsEmpty) {
  EXPECT_TRUE(MaxWeightMatchingExact(4, std::vector<double>(16, 1.0), 0)
                  .empty());
}

TEST(MatchingDiversifierTest, AchievesHassinBound) {
  // 2 - 1/ceil(p/2) approximation; we check the implied factor against
  // brute force on random instances.
  for (int seed = 1; seed <= 8; ++seed) {
    Rng rng(seed * 7);
    Dataset data = MakeUniformSynthetic(12, rng);
    const ModularFunction weights(data.weights);
    const DiversificationProblem problem(&data.metric, &weights, 0.2);
    for (int p : {4, 5, 6}) {
      const AlgorithmResult match =
          MatchingDiversifier(problem, weights, {.p = p});
      const AlgorithmResult opt = BruteForceCardinality(problem, {.p = p});
      const double factor = 2.0 - 1.0 / ((p + 1) / 2);
      EXPECT_GE(match.objective * factor + 1e-9, opt.objective)
          << "seed=" << seed << " p=" << p;
      EXPECT_EQ(static_cast<int>(match.elements.size()), p);
    }
  }
}

}  // namespace
}  // namespace diverse
